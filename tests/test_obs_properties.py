"""Hypothesis property tests for the observability layer's invariants.

Three families, matching the guarantees the rest of the stack leans on:

* **model invariants on live event streams** — per-round transmitter totals
  equal the sum over channels, and a channel reports COLLISION iff its
  transmitter count is >= 2 (MESSAGE iff exactly 1, SILENCE iff 0);
* **merge algebra** — histogram (and registry) merge is associative and
  order-independent, which is exactly worker-merge correctness for the
  process-parallel profiled sweeps;
* **serialization** — registries survive the process boundary losslessly.
"""

from hypothesis import given, settings, strategies as st

from repro import FNWGeneral, activate_random, solve
from repro.baselines import Decay
from repro.obs import EventLog, Histogram, MetricsRegistry


# ------------------------------------------------- live-stream model invariants

@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    active=st.integers(min_value=2, max_value=24),
    channels=st.sampled_from([1, 4, 8, 16]),
)
def test_round_events_respect_the_model(seed, active, channels):
    log = EventLog()
    result = solve(
        FNWGeneral(),
        n=128,
        num_channels=channels,
        activation=activate_random(128, active, seed=seed),
        seed=seed,
        record_trace=True,
        instrument=log,
    )
    assert len(log.events) == result.rounds
    for event, record in zip(log.events, result.trace.rounds):
        # Transmitter total is the sum over channels — on the event itself
        # and against the independently recorded trace.
        assert event.total_transmitters == sum(event.transmitters.values())
        assert event.total_transmitters == sum(
            len(activity.transmitters) for activity in record.channels.values()
        )
        assert event.active_count == record.active_count
        assert set(event.outcomes) == set(record.channels)
        for channel, outcome in event.outcomes.items():
            tx = event.transmitters.get(channel, 0)
            # COLLISION iff >= 2 transmitters; MESSAGE iff exactly 1;
            # SILENCE iff 0 (with at least one listener present).
            if tx >= 2:
                assert outcome == "collision"
            elif tx == 1:
                assert outcome == "message"
            else:
                assert outcome == "silence"
                assert event.listeners.get(channel, 0) >= 1
        # Participants never exceed the live population.
        assert event.total_transmitters + event.total_listeners <= event.active_count


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_single_channel_stream_invariants(seed):
    """Same invariants on a protocol that exercises long silence stretches."""
    log = EventLog()
    solve(
        Decay(),
        n=256,
        num_channels=1,
        activation=activate_random(256, 3, seed=seed),
        seed=seed,
        instrument=log,
    )
    for event in log.events:
        assert set(event.outcomes) <= {1}
        for channel, outcome in event.outcomes.items():
            tx = event.transmitters.get(channel, 0)
            assert (outcome == "collision") == (tx >= 2)
            assert (outcome == "message") == (tx == 1)


# ------------------------------------------------------------- merge algebra

values = st.lists(
    st.floats(min_value=0, max_value=1e6, allow_nan=False, allow_infinity=False),
    max_size=40,
)
BOUNDS = (1, 10, 100, 1000)


def _hist(samples):
    histogram = Histogram(bounds=BOUNDS)
    for value in samples:
        histogram.observe(value)
    return histogram


def _state(histogram):
    """The exactly-mergeable part: buckets, count, extrema.

    ``total`` is an IEEE-754 sum, so across merge orders it is only equal up
    to rounding; it is asserted separately with ``isclose``.
    """
    return (
        tuple(histogram.bucket_counts),
        histogram.count,
        histogram.minimum,
        histogram.maximum,
    )


def _totals_close(a, b):
    import math

    return math.isclose(a.total, b.total, rel_tol=1e-9, abs_tol=1e-9)


@settings(max_examples=60, deadline=None)
@given(a=values, b=values, c=values)
def test_histogram_merge_is_associative(a, b, c):
    left = _hist(a)
    left.merge_from(_hist(b))
    left.merge_from(_hist(c))

    bc = _hist(b)
    bc.merge_from(_hist(c))
    right = _hist(a)
    right.merge_from(bc)

    assert _state(left) == _state(right)
    assert _totals_close(left, right)


@settings(max_examples=60, deadline=None)
@given(
    shards=st.lists(values, min_size=1, max_size=5),
    permutation_seed=st.integers(min_value=0, max_value=1 << 30),
)
def test_histogram_merge_is_order_independent(shards, permutation_seed):
    import random

    order = list(range(len(shards)))
    random.Random(permutation_seed).shuffle(order)

    in_order = Histogram(bounds=BOUNDS)
    for shard in shards:
        in_order.merge_from(_hist(shard))
    shuffled = Histogram(bounds=BOUNDS)
    for index in order:
        shuffled.merge_from(_hist(shards[index]))

    assert _state(in_order) == _state(shuffled)
    assert _totals_close(in_order, shuffled)
    # And merging equals observing everything in one histogram.
    flat = _hist([value for shard in shards for value in shard])
    assert _state(in_order) == _state(flat)
    assert _totals_close(in_order, flat)


@settings(max_examples=40, deadline=None)
@given(
    increments=st.lists(
        st.tuples(st.sampled_from(["a", "b", "c"]), st.integers(0, 100)), max_size=30
    ),
    split=st.integers(min_value=0, max_value=30),
)
def test_registry_counter_merge_matches_serial(increments, split):
    """Sharding a counter stream across two registries then merging loses nothing.

    Integer increments (what the engine sinks emit) make the sums exact, so
    the sharded merge must equal the serial tally bit for bit.
    """
    serial = MetricsRegistry()
    left, right = MetricsRegistry(), MetricsRegistry()
    for index, (name, amount) in enumerate(increments):
        serial.counter(name).inc(amount)
        (left if index < split else right).counter(name).inc(amount)
    merged = MetricsRegistry()
    merged.merge_from(left)
    merged.merge_from(right)
    assert merged.snapshot()["counters"] == serial.snapshot()["counters"]


@settings(max_examples=40, deadline=None)
@given(a=values, b=values)
def test_registry_round_trips_through_plain_data(a, b):
    """to_dict/from_dict is lossless — the process-boundary transport."""
    registry = MetricsRegistry()
    for value in a:
        registry.histogram("h", bounds=BOUNDS).observe(value)
        registry.counter("n").inc()
    for value in b:
        registry.gauge("g").set(value)
    restored = MetricsRegistry.from_dict(registry.to_dict())
    assert restored.to_dict() == registry.to_dict()
    merged = MetricsRegistry()
    merged.merge_from(restored)
    assert merged.to_dict() == registry.to_dict()
