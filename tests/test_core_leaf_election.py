"""Tests for LeafElection and coalescing cohorts (Section 5.3).

The heavy guns: every execution is checked against the channel-free
reference oracle (:mod:`repro.core.cohorts`), Property 11 is reconstructed
from instrumentation marks and verified phase by phase, and the embedded
SplitSearch is cross-validated against the standalone Snir search.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import LeafElection
from repro.core.cohorts import (
    Cohort,
    check_cohort_invariants,
    global_split_level,
    reference_election,
)
from repro.parallel import snir_search
from repro.protocols import solve
from repro.sim import Activation
from repro.tree import ChannelTree


def run_election(num_channels, leaves, seed=0, use_cohort_search=True):
    assignment = {index + 1: leaf for index, leaf in enumerate(sorted(leaves))}
    protocol = LeafElection(assignment, use_cohort_search=use_cohort_search)
    result = solve(
        protocol,
        n=num_channels,
        num_channels=num_channels,
        activation=Activation(active_ids=sorted(assignment)),
        seed=seed,
    )
    return assignment, result


def random_leaf_set(rng, num_leaves, size):
    return rng.sample(range(1, num_leaves + 1), size)


class TestAgainstReferenceOracle:
    @pytest.mark.parametrize("num_channels", [8, 64, 256])
    def test_winner_matches_reference(self, num_channels):
        tree = ChannelTree(num_channels // 2)
        rng = random.Random(num_channels)
        for trial in range(15):
            size = rng.randint(1, tree.num_leaves)
            leaves = random_leaf_set(rng, tree.num_leaves, size)
            assignment, result = run_election(num_channels, leaves, seed=trial)
            assert result.solved
            reference = reference_election(tree, leaves)
            assert assignment[result.winner] == reference.leader

    def test_full_occupancy(self):
        num_channels = 64
        tree = ChannelTree(32)
        leaves = list(range(1, 33))
        assignment, result = run_election(num_channels, leaves, seed=9)
        assert result.solved
        assert assignment[result.winner] == reference_election(tree, leaves).leader

    def test_single_node_wins_immediately(self):
        _assignment, result = run_election(64, [17], seed=0)
        assert result.solved
        assert result.solved_round == 1

    def test_two_adjacent_leaves(self):
        tree = ChannelTree(32)
        _assignment, result = run_election(64, [5, 6], seed=0)
        assert result.solved
        assert reference_election(tree, [5, 6]).leader == 5

    def test_phase_count_bound(self):
        # Corollary 15: at most lg x + 1 phases.
        rng = random.Random(44)
        for trial in range(10):
            leaves = random_leaf_set(rng, 128, rng.randint(2, 128))
            _assignment, result = run_election(256, leaves, seed=trial)
            phases = [
                m.payload["phase"]
                for m in result.trace.marks_with_label("leaf_election:phase")
            ]
            x = len(leaves)
            assert max(phases) <= (x - 1).bit_length() + 1


class TestProperty11:
    """Reconstruct cohort state per phase from marks and check Property 11."""

    def reconstruct(self, result, assignment):
        """phase -> list of Cohort built from each node's phase marks."""
        by_phase = {}
        for mark in result.trace.marks_with_label("leaf_election:phase"):
            payload = mark.payload
            by_phase.setdefault(payload["phase"], []).append(
                (payload["c_node"], payload["c_id"], assignment[mark.node_id], payload["c_size"])
            )
        cohorts_by_phase = {}
        for phase, entries in by_phase.items():
            groups = {}
            for c_node, c_id, leaf, c_size in entries:
                groups.setdefault(c_node, []).append((c_id, leaf, c_size))
            cohorts = []
            for c_node, members in groups.items():
                members.sort()
                c_ids = [m[0] for m in members]
                sizes = {m[2] for m in members}
                assert len(sizes) == 1, "cohort members disagree on cSize"
                size = sizes.pop()
                # Property 11: distinct cIDs forming exactly [cSize].
                assert c_ids == list(range(1, size + 1))
                cohorts.append(
                    Cohort(members=tuple(m[1] for m in members), node=c_node)
                )
            cohorts_by_phase[phase] = cohorts
        return cohorts_by_phase

    @pytest.mark.parametrize("seed", range(8))
    def test_property_11_every_phase(self, seed):
        num_channels = 128
        tree = ChannelTree(num_channels // 2)
        rng = random.Random(seed * 131)
        leaves = random_leaf_set(rng, tree.num_leaves, rng.randint(2, tree.num_leaves))
        assignment, result = run_election(num_channels, leaves, seed=seed)
        assert result.solved
        for phase, cohorts in self.reconstruct(result, assignment).items():
            check_cohort_invariants(tree, cohorts, phase)

    def test_split_levels_match_ground_truth(self):
        num_channels = 128
        tree = ChannelTree(num_channels // 2)
        rng = random.Random(5)
        for trial in range(8):
            leaves = random_leaf_set(rng, tree.num_leaves, rng.randint(2, 40))
            assignment, result = run_election(num_channels, leaves, seed=trial)
            cohorts_by_phase = self.reconstruct(result, assignment)
            split_marks = {
                m.payload["phase"]: m.payload["level"]
                for m in result.trace.marks_with_label("leaf_election:split_level")
            }
            for phase, level in split_marks.items():
                cohorts = cohorts_by_phase[phase]
                if len(cohorts) >= 2:
                    assert level == global_split_level(tree, cohorts)

    def test_eliminations_are_whole_cohorts(self):
        num_channels = 128
        tree = ChannelTree(num_channels // 2)
        rng = random.Random(6)
        for trial in range(8):
            leaves = random_leaf_set(rng, tree.num_leaves, rng.randint(3, 50))
            assignment, result = run_election(num_channels, leaves, seed=trial)
            cohorts_by_phase = self.reconstruct(result, assignment)
            eliminated = {}
            for mark in result.trace.marks_with_label("leaf_election:eliminated"):
                eliminated.setdefault(mark.payload["phase"], set()).add(
                    assignment[mark.node_id]
                )
            for phase, leaves_out in eliminated.items():
                cohort_members = {
                    frozenset(c.members) for c in cohorts_by_phase[phase]
                }
                # The eliminated set is a union of whole cohorts.
                remaining = set(leaves_out)
                for members in cohort_members:
                    if members <= remaining:
                        remaining -= members
                assert not remaining


class TestSnirCrossValidation:
    def test_search_iterations_match_snir_steps(self):
        num_channels = 256
        tree = ChannelTree(num_channels // 2)
        rng = random.Random(7)
        for trial in range(10):
            leaves = random_leaf_set(rng, tree.num_leaves, rng.randint(2, 100))
            assignment, result = run_election(num_channels, leaves, seed=trial)
            winner = result.winner
            # Walk the winner's marks: phase header, then search iterations.
            phase_state = {}
            pending = None
            for mark in result.trace.marks:
                if mark.node_id != winner:
                    continue
                if mark.label == "leaf_election:phase":
                    pending = mark.payload
                elif mark.label == "leaf_election:search_iterations" and pending:
                    phase_state[pending["phase"]] = (pending, mark.payload)

            # Re-derive each phase's cohort landscape from the reference
            # evolution and compare the distributed search cost with the
            # standalone Snir search on the true predicate.
            reference = reference_election(tree, leaves)
            cohorts = list(reference.initial)
            for phase_index, outcome in enumerate(reference.phases, start=1):
                if phase_index in phase_state:
                    payload, iterations = phase_state[phase_index]
                    level_max = tree.level_of(cohorts[0].node)
                    c_size = payload["c_size"]

                    def predicate(level):
                        ancestors = [
                            tree.ancestor(c.master, level) for c in cohorts
                        ]
                        return len(set(ancestors)) < len(ancestors)

                    if level_max - 0 > 1:
                        snir = snir_search(0, level_max, c_size, predicate)
                        assert snir.answer == outcome.split_level
                        assert snir.parallel_steps == iterations
                    else:
                        assert iterations == 0
                cohorts = list(outcome.merged)


class TestAblation:
    def test_binary_never_faster(self):
        rng = random.Random(8)
        for trial in range(10):
            leaves = random_leaf_set(rng, 128, rng.randint(4, 100))
            _a, cohort_result = run_election(256, leaves, seed=trial)
            _b, binary_result = run_election(
                256, leaves, seed=trial, use_cohort_search=False
            )
            # Same instance, deterministic algorithm: forced binary search
            # can never beat the (p+1)-ary cohort search.
            assert binary_result.rounds >= cohort_result.rounds
            assert binary_result.winner == cohort_result.winner

    def test_ablation_changes_only_speed(self):
        tree = ChannelTree(128)
        leaves = list(range(1, 65))
        _a, result = run_election(256, leaves, seed=1, use_cohort_search=False)
        assert result.solved
        assert reference_election(tree, leaves).leader == 1


class TestRoundStructure:
    def test_five_rounds_per_search_iteration(self):
        """Figure 3's accounting: each phase spends 1 round on the root
        check, exactly 5 rounds per SplitSearch iteration, and 1 round on
        pairing — pinned from the winner's marks against the solve round."""
        rng = random.Random(99)
        for trial in range(6):
            leaves = random_leaf_set(rng, 64, rng.randint(2, 64))
            assignment, result = run_election(128, leaves, seed=trial)
            winner = result.winner
            phases = 0
            iterations_total = 0
            for mark in result.trace.marks:
                if mark.node_id != winner:
                    continue
                if mark.label == "leaf_election:phase":
                    phases += 1
                elif mark.label == "leaf_election:search_iterations":
                    iterations_total += mark.payload
            # Phases 1..k-1 are full (root + search + pairing); the final
            # phase is the lone root-check round that solves.
            expected = (phases - 1) * 2 + 5 * iterations_total + 1
            assert result.solved_round == expected, (
                leaves,
                phases,
                iterations_total,
            )


class TestLargeInstance:
    def test_full_occupancy_c2048(self):
        """A big instance: 1024 nodes on a 2048-channel tree — exercises
        deep recursion, many concurrent cohorts, and the full pairing
        cascade (10 phases)."""
        num_channels = 2048
        tree = ChannelTree(num_channels // 2)
        leaves = list(range(1, tree.num_leaves + 1))
        assignment, result = run_election(num_channels, leaves, seed=0)
        assert result.solved
        assert assignment[result.winner] == 1  # leftmost leaf wins full trees
        phases = [
            m.payload["phase"]
            for m in result.trace.marks_with_label("leaf_election:phase")
        ]
        assert max(phases) == 11  # lg(1024) + 1 phases, all merges


class TestValidation:
    def test_rejects_duplicate_leaves(self):
        with pytest.raises(ValueError):
            LeafElection({1: 5, 2: 5})

    def test_rejects_unassigned_node(self):
        protocol = LeafElection({1: 5})
        with pytest.raises(ValueError):
            solve(
                protocol,
                n=64,
                num_channels=64,
                activation=Activation(active_ids=[2]),
            )

    def test_rejects_leaf_out_of_range(self):
        protocol = LeafElection({1: 999})
        with pytest.raises(ValueError):
            solve(
                protocol,
                n=64,
                num_channels=64,
                activation=Activation(active_ids=[1]),
            )


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_leaf_election_property(data):
    """Hypothesis: for arbitrary (C, leaf set, seed) the distributed election
    solves and agrees with the reference oracle."""
    exponent = data.draw(st.integers(min_value=3, max_value=8))
    num_channels = 1 << exponent
    tree = ChannelTree(num_channels // 2)
    size = data.draw(st.integers(min_value=1, max_value=tree.num_leaves))
    leaves = data.draw(
        st.lists(
            st.integers(min_value=1, max_value=tree.num_leaves),
            min_size=size,
            max_size=size,
            unique=True,
        )
    )
    seed = data.draw(st.integers(min_value=0, max_value=10**6))
    assignment, result = run_election(num_channels, leaves, seed=seed)
    assert result.solved
    assert assignment[result.winner] == reference_election(tree, leaves).leader
