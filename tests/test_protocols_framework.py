"""Tests for the protocol framework: Protocol objects, sequential
composition with carries and HALT, and the solve() runner."""

import pytest

from repro.protocols import (
    HALT,
    FunctionProtocol,
    Protocol,
    SequentialProtocol,
    Step,
    solve,
)
from repro.sim import Activation, listen, transmit


class EchoStep(Step):
    """Listens once and carries forward (carry + suffix)."""

    def __init__(self, suffix, name="echo"):
        self.suffix = suffix
        self.name = name

    def run(self, ctx, carry):
        yield listen(1)
        return (carry or "") + self.suffix


class HaltingStep(Step):
    name = "halting"

    def run(self, ctx, carry):
        yield listen(1)
        return HALT


class WinnerStep(Step):
    name = "winner"

    def run(self, ctx, carry):
        yield transmit(1, carry)
        return carry


class TestFunctionProtocol:
    def test_wraps_generator_function(self):
        def my_protocol(ctx):
            yield transmit(1, "x")

        protocol = FunctionProtocol(my_protocol)
        assert protocol.name == "my_protocol"
        result = solve(protocol, n=2, num_channels=2, activation=Activation([1]))
        assert result.solved

    def test_custom_name(self):
        protocol = FunctionProtocol(lambda ctx: iter(()), name="custom")
        assert protocol.name == "custom"


class TestSequentialProtocol:
    def test_requires_steps(self):
        with pytest.raises(ValueError):
            SequentialProtocol([])

    def test_carry_flows_through_steps(self):
        protocol = SequentialProtocol(
            [EchoStep("a", "first"), EchoStep("b", "second"), WinnerStep()],
            initial_carry="",
        )
        result = solve(protocol, n=2, num_channels=2, activation=Activation([1]))
        assert result.solved
        # The winner transmitted the accumulated carry on round 3.
        assert result.solved_round == 3

    def test_halt_stops_the_node(self):
        protocol = SequentialProtocol([HaltingStep(), WinnerStep()])
        result = solve(protocol, n=2, num_channels=2, activation=Activation([1]))
        # WinnerStep never ran: no transmission ever happened.
        assert not result.solved
        assert result.rounds == 1

    def test_step_marks_emitted(self):
        protocol = SequentialProtocol([EchoStep("a"), WinnerStep()], initial_carry="")
        result = solve(protocol, n=2, num_channels=2, activation=Activation([1]))
        labels = [m.label for m in result.trace.marks]
        assert "step:echo:begin" in labels
        assert "step:echo:end" in labels
        assert "step:winner:begin" in labels

    def test_steps_synchronized_across_nodes(self):
        # Two nodes run the same two-step protocol; both must hit the
        # winner step in the same round (collision, not a solve).
        protocol = SequentialProtocol([EchoStep("a"), WinnerStep()], initial_carry="")
        result = solve(protocol, n=2, num_channels=2, activation=Activation([1, 2]))
        assert not result.solved  # both transmitted together in round 2


class TestSolveRunner:
    def test_default_activation_is_everyone(self):
        seen = []

        class Recorder(Protocol):
            name = "recorder"

            def run(self, ctx):
                seen.append(ctx.node_id)
                return
                yield  # pragma: no cover

        solve(Recorder(), n=5, num_channels=2)
        assert sorted(seen) == [1, 2, 3, 4, 5]

    def test_wake_rounds_passed_through(self):
        rounds_seen = {}

        class WakeRecorder(Protocol):
            name = "wake"

            def run(self, ctx):
                observation = yield listen(1)
                rounds_seen[ctx.node_id] = observation.round_index

        solve(
            WakeRecorder(),
            n=3,
            num_channels=2,
            activation=Activation([1, 2], wake_rounds={1: 1, 2: 4}),
        )
        assert rounds_seen == {1: 1, 2: 4}

    def test_protocol_callable_as_factory(self):
        class Direct(Protocol):
            name = "direct"

            def run(self, ctx):
                yield transmit(1)

        protocol = Direct()
        # Protocol instances are usable directly where factories are expected.
        coroutine = protocol(
            __import__("repro.sim.context", fromlist=["NodeContext"]).NodeContext(
                node_id=1, n=2, num_channels=2, rng=__import__("random").Random(0)
            )
        )
        assert next(coroutine).channel == 1
