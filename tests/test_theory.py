"""Theory-vs-simulation cross-checks: the simulator must match the exact
closed-form numbers, not just asymptotic shapes."""

import math
import random
import statistics

import pytest

from repro import BinarySearchCD, SlottedAloha, solve
from repro.sim import activate_all, activate_random
from repro.theory import (
    aloha_expected_rounds,
    aloha_solo_probability,
    binary_search_cd_rounds,
    coin_flip_expected_rounds,
    no_singleton_probability,
    renaming_attempt_pmf,
    renaming_whp_attempts,
)


class TestFormulas:
    def test_aloha_solo_probability_values(self):
        assert aloha_solo_probability(1, 0.3) == pytest.approx(0.3)
        assert aloha_solo_probability(2, 0.5) == pytest.approx(0.5)
        assert aloha_solo_probability(1, 1.0) == 1.0
        assert aloha_solo_probability(5, 1.0) == 0.0

    def test_aloha_optimum_near_one_over_e(self):
        # At p = 1/a the solo probability approaches 1/e from above.
        for active in (10, 100, 1000):
            value = aloha_solo_probability(active, 1.0 / active)
            assert 1 / math.e < value < 0.5

    def test_renaming_pmf_sums_to_one(self):
        total = sum(renaming_attempt_pmf(8, k) for k in range(1, 200))
        assert total == pytest.approx(1.0, abs=1e-12)

    def test_renaming_whp_formula(self):
        assert renaming_whp_attempts(4, 256) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            renaming_whp_attempts(1, 16)

    def test_no_singleton_edge_cases(self):
        assert no_singleton_probability(0, 5) == 1.0
        assert no_singleton_probability(1, 5) == 0.0  # one ball is a singleton
        # Two balls in m bins: no singleton iff same bin: 1/m.
        for bins in (2, 3, 10):
            assert no_singleton_probability(2, bins) == pytest.approx(1.0 / bins)

    def test_no_singleton_monte_carlo_agreement(self):
        rng = random.Random(0)
        balls, bins, trials = 6, 4, 200_000
        hits = 0
        for _ in range(trials):
            counts = [0] * bins
            for _b in range(balls):
                counts[rng.randrange(bins)] += 1
            if 1 not in counts:
                hits += 1
        exact = no_singleton_probability(balls, bins)
        assert hits / trials == pytest.approx(exact, abs=0.005)

    def test_no_singleton_within_lemma9_bound(self):
        # The exact probability respects Lemma 9's bound in its regime.
        for bins in (32, 64):
            for beta in (3, 4, 8):
                balls = bins // beta
                assert no_singleton_probability(balls, bins) < 2.0 ** (-balls / 2)

    def test_binary_search_rounds_formula(self):
        assert binary_search_cd_rounds(1) == 1
        assert binary_search_cd_rounds(2) == 2
        assert binary_search_cd_rounds(1024) == 11

    def test_validation(self):
        with pytest.raises(ValueError):
            aloha_solo_probability(0, 0.5)
        with pytest.raises(ValueError):
            aloha_solo_probability(2, 0.0)
        with pytest.raises(ValueError):
            renaming_attempt_pmf(4, 0)
        with pytest.raises(ValueError):
            no_singleton_probability(-1, 4)
        with pytest.raises(ValueError):
            binary_search_cd_rounds(0)


class TestSimulationMatchesTheory:
    def test_aloha_mean_rounds(self):
        # Dense ALOHA: measured mean within 15% of 1/P (600 trials).
        n = 256
        expected = aloha_expected_rounds(n, 1.0 / n)
        rounds = []
        for seed in range(600):
            result = solve(
                SlottedAloha(),
                n=n,
                num_channels=1,
                activation=activate_all(n),
                seed=seed,
            )
            rounds.append(result.rounds)
        measured = statistics.mean(rounds)
        assert measured == pytest.approx(expected, rel=0.15)

    def test_aloha_sparse_mean_rounds(self):
        n, active = 512, 4
        expected = aloha_expected_rounds(active, 1.0 / n)
        rounds = []
        for seed in range(200):
            result = solve(
                SlottedAloha(),
                n=n,
                num_channels=1,
                activation=activate_random(n, active, seed=seed),
                seed=seed,
            )
            rounds.append(result.rounds)
        measured = statistics.mean(rounds)
        assert measured == pytest.approx(expected, rel=0.25)

    def test_binary_search_exact_rounds_dense(self):
        # With everyone active, the descent always recurses left: the
        # worst case is achieved exactly.
        for n_exp in (4, 8, 10):
            n = 1 << n_exp
            result = solve(
                BinarySearchCD(),
                n=n,
                num_channels=1,
                activation=activate_all(n),
                seed=0,
            )
            # Solved at the first solo, which happens at or before the
            # formula's worst case.
            assert result.rounds <= binary_search_cd_rounds(n)

    def test_coin_flip_expectation(self):
        assert coin_flip_expected_rounds() == 2.0
