"""Differential tests: fault injection off means *exactly* off.

The fault hooks sit on the engine's hottest path (channel resolution and
delivery), so the `faults=None` default must leave the execution
bitwise-identical to a build without :mod:`repro.faults` — same results,
same serialized trace, byte for byte.  Three progressively stricter
identities, over the same protocol/seed grid the observability differential
suite uses (``test_obs_differential.CASES``):

1. ``faults=None`` vs an empty ``FaultPlan()`` — the plan machinery itself
   must inject nothing;
2. ``faults=None`` vs zero-intensity models (budget-0 jamming, p=0 noise,
   fraction-0 churn) — every model's "off" setting is genuinely off;
3. all of the above with instrumentation attached — the fault and
   observability layers must not interfere.
"""

import json

import pytest

from repro.faults import CDNoise, Churn, FaultPlan, Jamming
from repro.obs import EventLog, RegistrySink, TeeSink
from repro.sim import result_to_dict

from tests.test_obs_differential import CASES, SEEDS, _run


def _fingerprint(result):
    return json.dumps(result_to_dict(result), sort_keys=True)


def _solve(factory, kwargs, seed, faults, instrument=None):
    from repro import solve

    return solve(
        factory(),
        seed=seed,
        record_trace=True,
        instrument=instrument,
        faults=faults,
        **kwargs,
    )


#: Every "fault injection disabled" spelling the API admits.
NO_OP_FAULTS = [
    ("empty-plan", lambda: FaultPlan()),
    ("zero-budget-jamming", lambda: Jamming(0)),
    ("zero-probability-noise", lambda: CDNoise(0.0)),
    ("zero-fraction-churn", lambda: Churn()),
    (
        "composite-of-zeros",
        lambda: FaultPlan([Jamming(0), CDNoise(0.0), Churn()]),
    ),
]


@pytest.mark.parametrize("name,factory,make_kwargs", CASES, ids=[c[0] for c in CASES])
@pytest.mark.parametrize("seed", SEEDS)
def test_empty_plan_is_bitwise_identical(name, factory, make_kwargs, seed):
    kwargs = make_kwargs(seed)
    plain = _run(factory, kwargs, seed, instrument=None)
    faulted = _solve(factory, kwargs, seed, faults=FaultPlan())
    assert _fingerprint(faulted) == _fingerprint(plain)
    assert (faulted.solved, faulted.winner, faulted.rounds) == (
        plain.solved,
        plain.winner,
        plain.rounds,
    )


@pytest.mark.parametrize("fault_name,make_faults", NO_OP_FAULTS, ids=[f[0] for f in NO_OP_FAULTS])
@pytest.mark.parametrize("name,factory,make_kwargs", CASES, ids=[c[0] for c in CASES])
def test_zero_intensity_models_are_bitwise_identical(
    fault_name, make_faults, name, factory, make_kwargs
):
    seed = SEEDS[0]
    kwargs = make_kwargs(seed)
    plain = _run(factory, kwargs, seed, instrument=None)
    faulted = _solve(factory, kwargs, seed, faults=make_faults())
    assert _fingerprint(faulted) == _fingerprint(plain)


@pytest.mark.parametrize("name,factory,make_kwargs", CASES, ids=[c[0] for c in CASES])
def test_instrumented_empty_plan_matches_and_emits_no_fault_events(
    name, factory, make_kwargs
):
    seed = SEEDS[0]
    kwargs = make_kwargs(seed)
    plain = _run(factory, kwargs, seed, instrument=None)
    log = EventLog()
    sink = RegistrySink()
    faulted = _solve(
        factory, kwargs, seed, faults=FaultPlan(), instrument=TeeSink([log, sink])
    )
    assert _fingerprint(faulted) == _fingerprint(plain)
    # No phantom fault activity in the event stream or the metric registry,
    # and the serialized events stay byte-identical to fault-free JSONL.
    for event in log.events:
        assert event.faults == {}
        assert "faults" not in event.to_dict()
    for counter in (
        "fault_jammed_channel_rounds",
        "fault_misread_channel_rounds",
        "fault_crashes",
    ):
        assert sink.registry.counter(counter).value == 0.0
