"""Tests for the experiment harness: every experiment runs at a reduced
configuration and its verdicts hold.

These are integration tests of the full measurement pipeline (trial runners
-> sweeps -> predictors -> tables), not statistical validations of the paper
— those live in the benchmarks with larger budgets.  Still, the scale-free
verdicts (validity rates, bound respect, winner identity) must already hold
at small scale.
"""

import pytest

from repro.experiments import (
    REGISTRY,
    adversarial_search,
    balls_in_bins,
    baseline_comparison,
    channel_utilization,
    cohort_ablation,
    crossover_atlas,
    expected_time,
    general_scaling,
    id_reduction_scaling,
    kappa_ablation,
    leaf_election_scaling,
    lower_bound_ratio,
    population_trajectory,
    reduce_knockout,
    splitcheck_exact,
    step_breakdown,
    two_active_scaling,
    wakeup_transform,
    whp_validation,
)
from repro.experiments.common import make_protocol


class TestRegistry:
    def test_every_entry_has_run_and_main(self):
        for key, (module, description) in REGISTRY.items():
            assert hasattr(module, "run"), key
            assert hasattr(module, "main"), key
            assert hasattr(module, "Config"), key
            assert description

    def test_make_protocol_registry(self):
        for name in (
            "fnw-general",
            "two-active",
            "binary-search-cd",
            "tree-splitting",
            "decay",
            "daum-multichannel",
            "slotted-aloha",
        ):
            assert make_protocol(name).name == name

    def test_make_protocol_unknown(self):
        with pytest.raises(KeyError):
            make_protocol("nope")


class TestTwoActiveScaling:
    def test_small_run(self):
        outcome = two_active_scaling.run(
            two_active_scaling.Config(
                ns=(256, 4096),
                cs=(4, 64),
                trials=40,
                tail_ns=(16,),
                tail_cs=(4,),
                tail_factor=20,
            )
        )
        assert outcome.table.rows
        assert outcome.tail_table.rows
        # whp ratio flat within a small constant band.
        assert 0.3 <= outcome.ratio_min <= outcome.ratio_max <= 3.0


class TestSplitcheckExact:
    def test_all_verdicts_positive(self):
        table = splitcheck_exact.run(splitcheck_exact.Config(cs=(2, 8, 32), max_pairs=300))
        for row in table.rows:
            assert row[2] == "yes"  # all_correct
            assert row[3] == "yes"  # unique_winner


class TestReduceKnockout:
    def test_survivor_floor(self):
        table = reduce_knockout.run(
            reduce_knockout.Config(ns=(256, 4096), densities=(1.0,), trials=30)
        )
        for row in table.rows:
            assert float(row[-1]) >= 1.0  # min_final_active
            assert float(row[-2]) == 0.0  # never exceeded alpha*log n


class TestIdReductionScaling:
    def test_always_valid(self):
        outcome = id_reduction_scaling.run(
            id_reduction_scaling.Config(ns=(256, 4096), cs=(16, 64), trials=25)
        )
        assert outcome.all_valid


class TestBallsInBins:
    def test_bound_respected(self):
        table = balls_in_bins.run(
            balls_in_bins.Config(ms=(32, 64), betas=(3, 4), trials=800)
        )
        assert table.rows
        for row in table.rows:
            assert row[-1] == "yes"


class TestLeafElectionScaling:
    def test_phase_bound(self):
        outcome = leaf_election_scaling.run(
            leaf_election_scaling.Config(grid=((64, 4), (64, 16)), trials=15)
        )
        assert outcome.phase_bound_ok
        assert outcome.per_phase_table.rows


class TestCohortAblation:
    def test_cohorts_never_slower(self):
        outcome = cohort_ablation.run(
            cohort_ablation.Config(grid=((256, 16), (256, 64)), trials=10)
        )
        # Deterministic per instance: binary >= cohort, so mean speedup >= 1.
        assert all(s >= 1.0 for s in outcome.speedups)


class TestGeneralScaling:
    def test_all_solved(self):
        outcome = general_scaling.run(
            general_scaling.Config(
                cells=((256, 256), (1024, 1024)), cs=(8, 64), trials=15
            )
        )
        assert outcome.all_solved


class TestBaselineComparison:
    def test_landscape_shape(self):
        outcome = baseline_comparison.run(
            baseline_comparison.Config(
                ns=(1024,),
                cs=(1, 64),
                densities=(1.0,),
                trials=25,
            )
        )
        # CD beats no-CD on the dense single-channel instance.
        assert outcome.means[("binary-search-cd", 1024, 1, 1.0)] < outcome.means[
            ("decay", 1024, 1, 1.0)
        ]
        # Our algorithm with 64 channels beats the single-channel classic.
        assert outcome.means[("fnw-general", 1024, 64, 1.0)] < outcome.means[
            ("binary-search-cd", 1024, 64, 1.0)
        ]


class TestLowerBoundRatio:
    def test_bands_finite(self):
        outcome = lower_bound_ratio.run(
            lower_bound_ratio.Config(ns=(256, 4096), cs=(4, 64), trials=30)
        )
        low, high = outcome.two_band
        assert 0.1 < low <= high < 10.0


class TestWakeupTransform:
    def test_verdicts(self):
        outcome = wakeup_transform.run(
            wakeup_transform.Config(
                n=512, cs=(16,), active_count=20, max_delays=(0, 4), trials=20
            )
        )
        assert outcome.all_solved
        assert outcome.exact_2x_law_holds
        assert outcome.all_within_budget


class TestWhpValidation:
    def test_everything_solves(self):
        outcome = whp_validation.run(
            whp_validation.Config(ns=(16, 64), cs=(4,), trials=150)
        )
        assert outcome.all_solved


class TestKappaAblation:
    def test_kappa_independent_validity(self):
        outcome = kappa_ablation.run(
            kappa_ablation.Config(
                n=4096, cs=(64,), kappas=(2.0, 144.0), trials=20
            )
        )
        assert outcome.all_valid


class TestExpectedTime:
    def test_mean_band_small(self):
        outcome = expected_time.run(
            expected_time.Config(ns=(256, 4096), actives=(1, 32), trials=60)
        )
        _low, high = outcome.mean_band
        assert high <= 12.0


class TestPopulationTrajectory:
    def test_trajectory_verdicts(self):
        outcome = population_trajectory.run(
            population_trajectory.Config(n=512, num_channels=32, trials=10)
        )
        assert outcome.non_increasing
        assert outcome.reduce_target_met
        assert outcome.sparkline


class TestCrossoverAtlas:
    CONFIG = crossover_atlas.Config(
        protocols=("fnw-general", "decay", "bk-backoff", "dmks-nonadaptive"),
        ns=(16,),
        channels=(1, 2),
        cd_qualities=("strong", "noise-0.5", "none"),
        trials=3,
        max_rounds=600,
        master_seed=4,
    )

    def test_blind_columns_exactly_constant(self):
        outcome = crossover_atlas.run(self.CONFIG)
        # Paired per-quality sweeps + bitwise CD-blindness: the no-CD rows
        # must be *equal*, not merely close, along the quality axis.
        assert outcome.blind_columns_constant(tolerance=0.0)

    def test_cd_protocols_degrade_and_frontiers_resolve(self):
        outcome = crossover_atlas.run(self.CONFIG)
        # The paper's algorithm cannot be better off without CD than with it.
        for n, C in outcome.coordinates:
            clean = outcome.cells[("fnw-general", n, C, "strong")]
            blinded = outcome.cells[("fnw-general", n, C, "none")]
            assert blinded.mean_cost >= clean.mean_cost
        frontier = outcome.crossover_frontier()
        assert set(frontier) == set(outcome.coordinates)
        for crossover in frontier.values():
            assert crossover is None or crossover in outcome.cd_qualities

    def test_winner_and_factor_are_consistent(self):
        outcome = crossover_atlas.run(self.CONFIG)
        for n, C in outcome.coordinates:
            for cd in outcome.cd_qualities:
                winner = outcome.winner(n, C, cd)
                best = outcome.cells[(winner, n, C, cd)].mean_cost
                assert all(
                    outcome.cells[(p, n, C, cd)].mean_cost >= best
                    for p in outcome.protocols
                )
                factor = outcome.win_factor(n, C, cd)
                assert factor >= 1.0

    def test_weighted_costs_price_transmissions(self):
        config = crossover_atlas.Config(
            protocols=("decay", "bk-backoff"),
            ns=(16,),
            channels=(1,),
            cd_qualities=("strong",),
            trials=3,
            max_rounds=600,
            master_seed=4,
            energy_cost=0.25,
            collision_cost=1.0,
        )
        outcome = crossover_atlas.run(config)
        # Every solved trial transmits at least once, so nonzero weights
        # strictly raise cost above rounds.
        for stats in outcome.cells.values():
            assert stats.mean_cost > stats.mean_rounds

    def test_parallel_path_matches_serial(self, tmp_path):
        serial = crossover_atlas.run(self.CONFIG)
        import dataclasses

        checkpointed = crossover_atlas.run(
            dataclasses.replace(
                self.CONFIG, checkpoint_dir=str(tmp_path / "ckpt")
            )
        )
        assert checkpointed.cells == serial.cells


class TestAdversarialSearch:
    def test_gain_bounded(self):
        outcome = adversarial_search.run(
            adversarial_search.Config(
                n=256,
                cs=(16,),
                active_counts=(8,),
                generations=2,
                population=4,
                eval_seeds=2,
            )
        )
        assert 1.0 <= outcome.max_gain <= 10.0


class TestStepBreakdown:
    def test_spans_consistent(self):
        outcome = step_breakdown.run(
            step_breakdown.Config(
                ns=(512,), cs=(16,), active_count=200, trials=25
            )
        )
        assert outcome.reduce_within_schedule
        assert outcome.spans_sum_to_total


class TestChannelUtilization:
    def test_footprint_verdicts(self):
        outcome = channel_utilization.run(
            channel_utilization.Config(
                n=512, num_channels=32, active_count=200, trials=10
            )
        )
        assert outcome.primary_busiest
        assert outcome.id_reduction_covers_half_c
        assert outcome.leaf_election_within_tree
