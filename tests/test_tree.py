"""Unit and property tests for the channel tree (heap algebra, ancestors,
divergence levels) — the structure both SplitCheck and LeafElection rely on."""

import pytest
from hypothesis import given, strategies as st

from repro.mathutil import ceil_div
from repro.tree import ChannelTree, split_levels

TREES = [ChannelTree(1 << k) for k in range(0, 7)]


def leaf_pairs(tree):
    for a in range(1, tree.num_leaves + 1):
        for b in range(1, tree.num_leaves + 1):
            if a != b:
                yield a, b


class TestShape:
    def test_rejects_non_power_of_two(self):
        for bad in (0, 3, 6, 12):
            with pytest.raises(ValueError):
                ChannelTree(bad)

    @pytest.mark.parametrize("leaves,height,nodes", [(1, 0, 1), (2, 1, 3), (8, 3, 15), (64, 6, 127)])
    def test_dimensions(self, leaves, height, nodes):
        tree = ChannelTree(leaves)
        assert tree.height == height
        assert tree.num_nodes == nodes

    def test_level_widths_sum_to_nodes(self):
        tree = ChannelTree(32)
        assert sum(tree.level_width(level) for level in range(tree.height + 1)) == tree.num_nodes

    def test_level_nodes_partition(self):
        tree = ChannelTree(16)
        seen = set()
        for level in range(tree.height + 1):
            nodes = set(tree.level_nodes(level))
            assert not nodes & seen
            seen |= nodes
        assert seen == set(range(1, tree.num_nodes + 1))


class TestNavigation:
    def test_parent_child_inverse(self):
        tree = ChannelTree(16)
        for node in range(1, tree.num_nodes + 1):
            if not tree.is_leaf_node(node):
                assert tree.parent(tree.left_child(node)) == node
                assert tree.parent(tree.right_child(node)) == node

    def test_root_has_no_parent(self):
        with pytest.raises(ValueError):
            ChannelTree(4).parent(1)

    def test_left_right_children_classified(self):
        tree = ChannelTree(8)
        for node in range(1, tree.num_nodes + 1):
            if not tree.is_leaf_node(node):
                assert tree.is_left_child(tree.left_child(node))
                assert not tree.is_left_child(tree.right_child(node))

    def test_leaf_children_rejected(self):
        tree = ChannelTree(4)
        leaf = tree.leaf_node(2)
        with pytest.raises(ValueError):
            tree.left_child(leaf)

    def test_level_of(self):
        tree = ChannelTree(8)
        assert tree.level_of(1) == 0
        assert tree.level_of(2) == 1
        assert tree.level_of(3) == 1
        assert tree.level_of(8) == 3
        assert tree.level_of(15) == 3


class TestLeafAlgebra:
    def test_leaf_node_label_roundtrip(self):
        tree = ChannelTree(32)
        for leaf in range(1, 33):
            assert tree.leaf_label(tree.leaf_node(leaf)) == leaf

    def test_ancestor_at_extremes(self):
        tree = ChannelTree(16)
        for leaf in range(1, 17):
            assert tree.ancestor(leaf, 0) == 1
            assert tree.ancestor(leaf, tree.height) == tree.leaf_node(leaf)

    def test_ancestor_chain_is_parent_chain(self):
        tree = ChannelTree(32)
        for leaf in (1, 7, 18, 32):
            path = tree.path(leaf)
            assert path[0] == 1
            assert path[-1] == tree.leaf_node(leaf)
            for shallower, deeper in zip(path, path[1:]):
                assert tree.parent(deeper) == shallower

    def test_ancestor_index_matches_paper_formula(self):
        # The SplitCheck channel formula: ceil(id / 2^(h - m)).
        for tree in TREES[1:]:
            h = tree.height
            for leaf in range(1, tree.num_leaves + 1):
                for level in range(0, h + 1):
                    expected = ceil_div(leaf, 1 << (h - level))
                    assert tree.ancestor_index_in_level(leaf, level) == expected

    def test_in_right_subtree(self):
        tree = ChannelTree(8)
        # Leaf 1 is leftmost: never in a right subtree.
        for level in range(tree.height):
            assert not tree.in_right_subtree(1, level)
        # Leaf 8 is rightmost: always in the right subtree.
        for level in range(tree.height):
            assert tree.in_right_subtree(8, level)

    def test_in_right_subtree_rejects_leaf_level(self):
        tree = ChannelTree(8)
        with pytest.raises(ValueError):
            tree.in_right_subtree(1, tree.height)


class TestDivergence:
    def test_identical_leaves_rejected(self):
        with pytest.raises(ValueError):
            ChannelTree(8).divergence_level(3, 3)

    def test_exhaustive_against_definition(self):
        for tree in TREES[1:5]:
            for a, b in leaf_pairs(tree):
                level = tree.divergence_level(a, b)
                # Definition: smallest m with different level-m ancestors.
                assert tree.ancestor(a, level) != tree.ancestor(b, level)
                assert tree.ancestor(a, level - 1) == tree.ancestor(b, level - 1)

    def test_symmetry(self):
        tree = ChannelTree(64)
        for a, b in [(1, 64), (13, 14), (32, 33), (5, 60)]:
            assert tree.divergence_level(a, b) == tree.divergence_level(b, a)

    def test_adjacent_leaves_deep_divergence(self):
        tree = ChannelTree(64)
        # Leaves 1 and 2 share everything except the last step.
        assert tree.divergence_level(1, 2) == tree.height
        # Leaves 32 and 33 split at the root.
        assert tree.divergence_level(32, 33) == 1

    def test_lca_is_shared_ancestor(self):
        tree = ChannelTree(32)
        for a, b in [(1, 32), (5, 6), (17, 24)]:
            lca = tree.lca(a, b)
            level = tree.level_of(lca)
            assert tree.ancestor(a, level) == lca
            assert tree.ancestor(b, level) == lca

    def test_global_divergence_level_single_leaf(self):
        assert ChannelTree(16).global_divergence_level([5]) == 0

    def test_global_divergence_level_examples(self):
        tree = ChannelTree(8)
        assert tree.global_divergence_level([1, 8]) == 1
        assert tree.global_divergence_level([1, 2]) == 3
        assert tree.global_divergence_level([1, 4, 5, 8]) == 2

    @given(
        st.integers(min_value=1, max_value=6),
        st.data(),
    )
    def test_global_divergence_property(self, exponent, data):
        tree = ChannelTree(1 << exponent)
        count = data.draw(
            st.integers(min_value=2, max_value=min(8, tree.num_leaves))
        )
        leaves = data.draw(
            st.lists(
                st.integers(min_value=1, max_value=tree.num_leaves),
                min_size=count,
                max_size=count,
                unique=True,
            )
        )
        level = tree.global_divergence_level(leaves)
        # At `level` all ancestors are distinct...
        ancestors = [tree.ancestor(leaf, level) for leaf in leaves]
        assert len(set(ancestors)) == len(leaves)
        # ...and at level-1 (if it exists) some pair collides.
        if level > 0:
            shallower = [tree.ancestor(leaf, level - 1) for leaf in leaves]
            assert len(set(shallower)) < len(leaves)

    def test_split_levels_helper(self):
        tree = ChannelTree(8)
        assert split_levels(tree, [1, 2, 8]) == (3, 1)


class TestChannels:
    def test_node_channel_is_identity(self):
        tree = ChannelTree(16)
        for node in range(1, tree.num_nodes + 1):
            assert tree.node_channel(node) == node

    def test_row_channel_is_leftmost(self):
        tree = ChannelTree(16)
        for level in range(tree.height + 1):
            assert tree.row_channel(level) == min(tree.level_nodes(level))

    def test_all_channels_fit_in_capacity(self):
        # A tree with C/2 leaves must fit in C channels (LeafElection).
        for c_exponent in range(2, 8):
            num_channels = 1 << c_exponent
            tree = ChannelTree(num_channels // 2)
            assert tree.num_nodes <= num_channels
