"""Tests for the statistics helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis import geometric_mean, proportion_ci, quantile, summarize


class TestSummarize:
    def test_basic(self):
        summary = summarize([1, 2, 3, 4, 5])
        assert summary.count == 5
        assert summary.mean == 3.0
        assert summary.minimum == 1.0
        assert summary.maximum == 5.0
        assert summary.median == 3.0

    def test_single_value(self):
        summary = summarize([7.0])
        assert summary.std == 0.0
        assert summary.ci95_half_width == 0.0
        assert summary.p99 == 7.0

    def test_std_matches_textbook(self):
        values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        summary = summarize(values)
        assert summary.std == pytest.approx(2.138, abs=1e-3)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_format_contains_fields(self):
        text = summarize([1, 2, 3]).format()
        assert "median" in text
        assert "n=3" in text

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=200))
    def test_invariants(self, values):
        summary = summarize(values)
        tolerance = 1e-6 * max(1.0, abs(summary.maximum), abs(summary.minimum))
        assert summary.minimum <= summary.median <= summary.maximum
        assert summary.minimum - tolerance <= summary.mean <= summary.maximum + tolerance
        assert summary.p90 <= summary.p99 <= summary.maximum
        assert summary.std >= 0.0


class TestQuantile:
    def test_nearest_rank(self):
        data = list(range(1, 101))
        assert quantile(data, 0.5) == 50
        assert quantile(data, 0.99) == 99
        assert quantile(data, 1.0) == 100
        assert quantile(data, 0.0) == 1

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            quantile([], 0.5)
        with pytest.raises(ValueError):
            quantile([1], 1.5)


class TestProportionCI:
    def test_zero_successes(self):
        low, high = proportion_ci(0, 100)
        assert low == 0.0
        assert 0.0 < high < 0.05

    def test_all_successes(self):
        low, high = proportion_ci(100, 100)
        assert high == pytest.approx(1.0)
        assert 0.95 < low < 1.0

    def test_half(self):
        low, high = proportion_ci(50, 100)
        assert low < 0.5 < high
        assert high - low < 0.25

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            proportion_ci(5, 0)
        with pytest.raises(ValueError):
            proportion_ci(11, 10)

    def test_narrows_with_trials(self):
        _low_small, high_small = proportion_ci(1, 20)
        _low_big, high_big = proportion_ci(50, 1000)
        assert high_big - _low_big < high_small - _low_small


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([])

    @given(st.lists(st.floats(min_value=0.1, max_value=1000.0), min_size=1, max_size=50))
    def test_between_min_and_max(self, values):
        gm = geometric_mean(values)
        assert min(values) - 1e-9 <= gm <= max(values) + 1e-9
