"""Seed discipline for arrival streams, and budget-exhaustion accounting.

Arrival schedules are pure functions of ``(process params, horizon, seed)``,
so a sweep over (λ × protocol × faults) must be bitwise-reproducible however
it is executed: serial, one worker, many workers, or resumed from a
checkpoint.  These tests pin that, plus one engine regression: when a stream
keeps nodes busy through the whole round budget, instrumentation sinks must
still receive their terminal ``RunSummary(solved=False)`` *before*
``RoundLimitExceeded`` propagates.
"""

import pytest

from repro.analysis.parallel import registered_trials
from repro.analysis.runner import SweepRunner
from repro.analysis.sweep import grid_product
from repro.baselines import Decay, SawtoothBackoff
from repro.obs import EventLog
from repro.sim.arrivals import (
    BatchArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    arrival_trial,
    run_stream,
)
from repro.sim.errors import RoundLimitExceeded

GRID = list(
    grid_product(
        protocol=["sawtooth-backoff", "decay"],
        rate=[0.05, 0.2],
    )
)
for _cell in GRID:
    _cell.update(C=1, horizon=80)


def _trials(sweep):
    return [
        (tuple(sorted(cell.params.items())), [dict(t) for t in cell.trials])
        for cell in sweep.cells
    ]


class TestArrivalsTrialRegistration:
    def test_trial_is_registered(self):
        assert "arrivals" in registered_trials()

    def test_trial_returns_sweep_shaped_metrics(self):
        metrics = arrival_trial(
            3, protocol="sawtooth-backoff", C=1, rate=0.1, horizon=60
        )
        assert "rounds" in metrics
        assert "unserved" in metrics
        assert "injected" in metrics


class TestScheduleSeedDiscipline:
    @pytest.mark.parametrize(
        "process",
        [
            PoissonArrivals(0.15),
            PoissonArrivals(0.0, initial=5),
            BatchArrivals(2, 9),
            DiurnalArrivals(0.2, amplitude=0.8, period=30),
        ],
        ids=["poisson", "poisson-initial", "batch", "diurnal"],
    )
    def test_same_seed_same_schedule(self, process):
        assert process.schedule(horizon=120, seed=13) == process.schedule(
            horizon=120, seed=13
        )

    def test_schedule_independent_of_engine_seed_usage(self):
        """The schedule draw is domain-separated from the engine's node
        RNGs: running a stream must not perturb a later schedule draw."""
        process = PoissonArrivals(0.1)
        before = process.schedule(horizon=100, seed=17)
        run_stream(SawtoothBackoff(), process, horizon=100, seed=17)
        run_stream(Decay(), process, horizon=100, seed=17)
        assert process.schedule(horizon=100, seed=17) == before

    def test_distinct_rates_decorrelate(self):
        """Nearby rates must not replay the same uniform stream."""
        a = PoissonArrivals(0.100).schedule(horizon=400, seed=3)
        b = PoissonArrivals(0.101).schedule(horizon=400, seed=3)
        assert a.births != b.births


class TestSweepRunnerPoolInvariance:
    def test_pool_size_does_not_change_results(self):
        with SweepRunner(processes=1) as one:
            serial = one.run_grid("arrivals", GRID, trials=3, master_seed=5)
        with SweepRunner(processes=2) as two:
            parallel = two.run_grid("arrivals", GRID, trials=3, master_seed=5)
        assert _trials(serial) == _trials(parallel)
        assert all(not cell.failures for cell in serial.cells)

    def test_master_seed_changes_trials(self):
        with SweepRunner(processes=1) as runner:
            a = runner.run_grid("arrivals", GRID[:1], trials=3, master_seed=5)
            b = runner.run_grid("arrivals", GRID[:1], trials=3, master_seed=6)
        assert _trials(a) != _trials(b)

    def test_checkpoint_resume_is_bitwise(self, tmp_path):
        with SweepRunner(
            processes=1, checkpoint_dir=str(tmp_path / "ckpt")
        ) as first:
            original = first.run_grid("arrivals", GRID, trials=2, master_seed=9)
        # Second runner resumes entirely from the checkpoint store.
        with SweepRunner(
            processes=1, checkpoint_dir=str(tmp_path / "ckpt")
        ) as second:
            resumed = second.run_grid("arrivals", GRID, trials=2, master_seed=9)
        assert _trials(original) == _trials(resumed)


class _AlwaysTransmit:
    """Degenerate protocol: every packet transmits every round.

    With batches of simultaneous births nothing is ever alone, so no packet
    is ever served and no round solves — the stream is guaranteed to exhaust
    any budget.
    """

    name = "always-transmit"

    def run(self, ctx):
        from repro.sim.actions import Action

        action = Action(channel=1, transmit=True)
        while True:
            yield action


class TestBudgetExhaustionAccounting:
    def test_terminal_summary_delivered_before_round_limit_exceeded(self):
        """A stream that stays busy (and unsolved) through the whole round
        budget must deliver the failure summary to sinks, then raise."""
        log = EventLog()
        with pytest.raises(RoundLimitExceeded):
            run_stream(
                _AlwaysTransmit(),
                BatchArrivals(5, 4),
                horizon=200,
                drain=100,
                seed=1,
                max_rounds=30,
                instrument=log,
            )
        assert log.summary is not None
        assert log.summary.solved is False
        assert log.summary.rounds == 30
        assert log.info is not None
        assert len(log.events) == 30

    def test_default_budget_avoids_round_limit_exceeded(self):
        """With the deadline-aware wrapper and the default budget, even a
        hopelessly saturated stream ends in a normal completion."""
        stream = run_stream(
            Decay(), BatchArrivals(5, 4), horizon=120, drain=40, seed=1
        )
        assert stream.metrics()["unserved"] > 0
        assert stream.result.rounds <= stream.deadline + 1
