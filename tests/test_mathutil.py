"""Unit tests for the exact integer-math helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.mathutil import (
    ceil_div,
    ceil_log2,
    exact_log2,
    floor_log2,
    is_power_of_two,
    largest_power_of_two_at_most,
    lg_lg,
    log2f,
    loglog2f,
)


class TestIsPowerOfTwo:
    def test_powers(self):
        for exponent in range(20):
            assert is_power_of_two(1 << exponent)

    def test_non_powers(self):
        for value in (0, -1, -2, 3, 5, 6, 7, 9, 12, 100, 1023):
            assert not is_power_of_two(value)


class TestFloorCeilLog2:
    def test_exact_on_powers(self):
        for exponent in range(16):
            assert floor_log2(1 << exponent) == exponent
            assert ceil_log2(1 << exponent) == exponent

    def test_between_powers(self):
        assert floor_log2(5) == 2
        assert ceil_log2(5) == 3
        assert floor_log2(1023) == 9
        assert ceil_log2(1023) == 10

    def test_one(self):
        assert floor_log2(1) == 0
        assert ceil_log2(1) == 0

    @pytest.mark.parametrize("bad", [0, -1, -100])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ValueError):
            floor_log2(bad)
        with pytest.raises(ValueError):
            ceil_log2(bad)

    @given(st.integers(min_value=1, max_value=10**12))
    def test_matches_float_log(self, x):
        assert floor_log2(x) == int(math.floor(math.log2(x) + 1e-12))
        assert 2 ** ceil_log2(x) >= x > 2 ** (ceil_log2(x) - 1) or x == 1


class TestExactLog2:
    def test_powers(self):
        for exponent in range(12):
            assert exact_log2(1 << exponent) == exponent

    def test_rejects_non_powers(self):
        with pytest.raises(ValueError):
            exact_log2(3)
        with pytest.raises(ValueError):
            exact_log2(0)


class TestLargestPowerOfTwoAtMost:
    @pytest.mark.parametrize(
        "value,expected",
        [(1, 1), (2, 2), (3, 2), (4, 4), (5, 4), (7, 4), (8, 8), (1000, 512)],
    )
    def test_values(self, value, expected):
        assert largest_power_of_two_at_most(value) == expected

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            largest_power_of_two_at_most(0)

    @given(st.integers(min_value=1, max_value=10**9))
    def test_properties(self, x):
        p = largest_power_of_two_at_most(x)
        assert is_power_of_two(p)
        assert p <= x < 2 * p


class TestCeilDiv:
    @pytest.mark.parametrize(
        "a,b,expected", [(0, 3, 0), (1, 3, 1), (3, 3, 1), (4, 3, 2), (9, 3, 3), (10, 3, 4)]
    )
    def test_values(self, a, b, expected):
        assert ceil_div(a, b) == expected

    def test_rejects_non_positive_divisor(self):
        with pytest.raises(ValueError):
            ceil_div(5, 0)

    @given(st.integers(min_value=0, max_value=10**9), st.integers(min_value=1, max_value=10**6))
    def test_matches_math_ceil(self, a, b):
        assert ceil_div(a, b) == math.ceil(a / b)


class TestLgLg:
    def test_small(self):
        assert lg_lg(2) == 1
        assert lg_lg(4) == 1
        assert lg_lg(16) == 2
        assert lg_lg(256) == 3
        assert lg_lg(1 << 16) == 4

    def test_floor_values(self):
        assert lg_lg(1) == 1
        assert lg_lg(0) == 1

    def test_monotone(self):
        previous = 0
        for exponent in range(1, 30):
            current = lg_lg(1 << exponent)
            assert current >= previous
            previous = current


class TestFloatHelpers:
    def test_log2f(self):
        assert log2f(8.0) == 3.0
        with pytest.raises(ValueError):
            log2f(0.0)

    def test_loglog2f_clamps(self):
        assert loglog2f(2.0) == 1.0
        assert loglog2f(0.5) == 1.0
        assert loglog2f(1 << 16) == 4.0

    def test_loglog2f_monotone(self):
        values = [loglog2f(2.0**k) for k in range(1, 40)]
        assert values == sorted(values)
