"""Unit tests for the metrics registry and the standard sinks."""

import pytest

from repro.obs import (
    COUNT_BUCKETS,
    Counter,
    EventLog,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSink,
    NullSink,
    RegistrySink,
    RoundEvent,
    RunInfo,
    RunSummary,
    TeeSink,
    exponential_bounds,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative_increments(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_merge_adds(self):
        a, b = Counter(2), Counter(3)
        a.merge_from(b)
        assert a.value == 5

    def test_dict_round_trip(self):
        counter = Counter(7)
        assert Counter.from_dict(counter.to_dict()).value == 7


class TestGauge:
    def test_tracks_extrema(self):
        gauge = Gauge()
        for value in (5, 2, 9):
            gauge.set(value)
        assert gauge.value == 9
        assert gauge.minimum == 2
        assert gauge.maximum == 9
        assert gauge.updates == 3

    def test_merge_keeps_extrema(self):
        a, b = Gauge(), Gauge()
        a.set(4)
        b.set(1)
        b.set(10)
        a.merge_from(b)
        assert a.minimum == 1
        assert a.maximum == 10
        assert a.updates == 3

    def test_merge_with_empty_is_identity(self):
        gauge = Gauge()
        gauge.set(3)
        gauge.merge_from(Gauge())
        assert gauge.value == 3
        assert gauge.updates == 1

    def test_dict_round_trip(self):
        gauge = Gauge()
        gauge.set(1)
        gauge.set(8)
        restored = Gauge.from_dict(gauge.to_dict())
        assert (restored.value, restored.minimum, restored.maximum) == (8, 1, 8)


class TestHistogram:
    def test_bucketing_is_upper_inclusive(self):
        histogram = Histogram(bounds=(1, 10))
        for value in (0.5, 1, 2, 10, 11):
            histogram.observe(value)
        assert histogram.bucket_counts == [2, 2, 1]
        assert histogram.count == 5
        assert histogram.minimum == 0.5
        assert histogram.maximum == 11

    def test_mean(self):
        histogram = Histogram()
        histogram.observe(2)
        histogram.observe(4)
        assert histogram.mean == 3

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(3, 1))
        with pytest.raises(ValueError):
            Histogram(bounds=(1, 1))

    def test_merge_requires_matching_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(1, 2)).merge_from(Histogram(bounds=(1, 3)))

    def test_dict_round_trip(self):
        histogram = Histogram(bounds=(1, 4, 16))
        for value in (0, 3, 100):
            histogram.observe(value)
        restored = Histogram.from_dict(histogram.to_dict())
        assert restored.bucket_counts == histogram.bucket_counts
        assert restored.total == histogram.total
        assert restored.bounds == histogram.bounds

    def test_exponential_bounds(self):
        assert exponential_bounds(1, 2, 4) == (1, 2, 4, 8)
        with pytest.raises(ValueError):
            exponential_bounds(0, 2, 4)


class TestRegistry:
    def test_instruments_created_once(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_histogram_bounds_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", bounds=(1, 2))
        with pytest.raises(ValueError):
            registry.histogram("h", bounds=(1, 3))

    def test_merge_combines_all_kinds(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(1)
        b.counter("c").inc(2)
        b.counter("only-b").inc(5)
        b.gauge("g").set(7)
        b.histogram("h").observe(3)
        a.merge_from(b)
        assert a.counter("c").value == 3
        assert a.counter("only-b").value == 5
        assert a.gauge("g").maximum == 7
        assert a.histogram("h").count == 1

    def test_dict_round_trip_preserves_everything(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(4)
        registry.gauge("g").set(2)
        registry.histogram("h", bounds=(1, 8)).observe(5)
        restored = MetricsRegistry.from_dict(registry.to_dict())
        assert restored.to_dict() == registry.to_dict()
        assert restored.snapshot() == registry.snapshot()

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"c": 1.0}
        assert snapshot["gauges"] == {}
        assert snapshot["histograms"] == {}


def _event(**overrides):
    base = dict(
        round_index=1,
        active_count=3,
        transmitters={1: 2},
        listeners={1: 1},
        outcomes={1: "collision"},
        wall_time_s=0.001,
    )
    base.update(overrides)
    return RoundEvent(**base)


class TestSinks:
    def test_standard_sinks_satisfy_the_protocol(self):
        for sink in (NullSink(), EventLog(), RegistrySink(), TeeSink()):
            assert isinstance(sink, MetricsSink)

    def test_event_log_retains_stream(self):
        log = EventLog()
        info = RunInfo(n=8, num_channels=2, seed=0, max_rounds=100)
        summary = RunSummary(
            solved=True, solved_round=1, winner=3, rounds=1, wall_time_s=0.1
        )
        log.on_run_start(info)
        log.on_round(_event())
        log.on_run_end(summary)
        assert log.info == info
        assert log.summary == summary
        assert [e.round_index for e in log.events] == [1]

    def test_registry_sink_aggregates(self):
        sink = RegistrySink()
        sink.on_run_start(RunInfo(n=8, num_channels=2, seed=0, max_rounds=100))
        sink.on_round(_event())
        sink.on_round(
            _event(round_index=2, transmitters={2: 1}, listeners={}, outcomes={2: "message"})
        )
        sink.on_run_end(
            RunSummary(solved=True, solved_round=2, winner=1, rounds=2, wall_time_s=0.2)
        )
        counters = sink.registry.snapshot()["counters"]
        assert counters["rounds"] == 2
        assert counters["transmissions"] == 3
        assert counters["listens"] == 1
        assert counters["channel_collision"] == 1
        assert counters["channel_message"] == 1
        assert counters["channel/1/participant_rounds"] == 3
        assert counters["solved_runs"] == 1
        assert sink.registry.gauge("peak_active").maximum == 3

    def test_tee_fans_out(self):
        log_a, log_b = EventLog(), EventLog()
        tee = TeeSink([log_a, log_b])
        tee.on_round(_event())
        assert len(log_a.events) == len(log_b.events) == 1

    def test_round_event_totals_and_outcome_counts(self):
        event = _event(transmitters={1: 2, 3: 1}, listeners={1: 1, 2: 4},
                       outcomes={1: "collision", 2: "silence", 3: "message"})
        assert event.total_transmitters == 3
        assert event.total_listeners == 5
        assert event.outcome_counts() == {"silence": 1, "message": 1, "collision": 1}
        payload = event.to_dict()
        assert payload["channels"]["2"]["outcome"] == "silence"
        assert payload["transmitters"] == 3

    def test_count_buckets_cover_defaults(self):
        assert COUNT_BUCKETS[0] == 1
        assert COUNT_BUCKETS == tuple(sorted(COUNT_BUCKETS))
