"""Supervised sweep fabric: watchdog, retry, self-healing, chaos, quarantine.

The acceptance bar mirrors the runner's own: (1) supervision *disabled*
must leave the runner bitwise-identical to the unsupervised code path,
(2) supervision *enabled* on a healthy grid must still produce the serial
reference results, and (3) under the deterministic chaos harness — workers
SIGKILLed mid-chunk, hung past the watchdog, or raising injected errors —
the full grid must complete via retry + pool self-healing + checkpoint
resume with zero lost or duplicated trial records.
"""

import json
import time

import pytest

from repro.analysis.parallel import register_trial
from repro.analysis.runner import (
    CheckpointStore,
    SweepRunner,
    checkpoint_key,
)
from repro.analysis.supervise import SupervisionPolicy, TrialSupervisor
from repro.analysis.sweep import TrialFailure, grid_product, run_sweep
from repro.faults.chaos import ChaosError, ChaosPlan, arm, armed, initializer, probe
from repro.obs.metrics import MetricsRegistry
from repro.sim.serialize import checkpoint_record_from_dict, checkpoint_record_to_dict

GRID = grid_product(n=[32, 64], C=[2, 4])
TRIALS = 5
MASTER_SEED = 3


@register_trial("supervise-test-ok")
def ok_trial(seed, n, C):
    """A fast deterministic trial used as the healthy-grid reference."""
    return {"rounds": float(seed % 7 + n + C), "solved": 1.0}


@register_trial("supervise-test-flaky")
def flaky_trial(seed, n, C):
    """Raises deterministically for a third of the seeds (keyed on seed)."""
    if seed % 3 == 0:
        raise RuntimeError(f"deliberate failure for seed {seed}")
    return {"rounds": float(seed % 7 + n + C), "solved": 1.0}


@register_trial("supervise-test-sleep")
def sleep_trial(seed, n, sleep_s):
    """Sleeps ``sleep_s`` then succeeds: hangs or completes depending on the
    policy's timeout, which is how quarantine-then-recover is driven."""
    time.sleep(sleep_s)
    return {"rounds": float(seed % 5 + n), "solved": 1.0}


def serial_reference(trial="supervise-test-ok", grid=GRID):
    def make(params):
        fn = {"supervise-test-ok": ok_trial}[trial]
        return lambda seed: fn(seed, **params)

    return run_sweep(grid, make, trials=TRIALS, master_seed=MASTER_SEED)


def cells_data(cells):
    return [(dict(c.params), [dict(t) for t in c.trials]) for c in cells]


def read_raw_records(store, trial, master_seed):
    """Every line of one store file, parsed but not deduplicated."""
    with open(store.path_for(trial, master_seed), "r", encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


# --------------------------------------------------------------------- policy


class TestSupervisionPolicy:
    def test_default_policy_is_inert(self):
        assert not SupervisionPolicy().active

    def test_timeout_or_retries_activate(self):
        assert SupervisionPolicy(timeout=1.0).active
        assert SupervisionPolicy(max_attempts=2).active

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"timeout": 0.0},
            {"timeout": -1.0},
            {"max_attempts": 0},
            {"backoff_base": -0.1},
            {"backoff_factor": 0.5},
            {"backoff_max": -1.0},
            {"backoff_jitter": -0.5},
            {"quarantine_after": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SupervisionPolicy(**kwargs)

    def test_backoff_first_dispatch_never_waits(self):
        assert SupervisionPolicy().backoff_delay(123, 0) == 0.0

    def test_backoff_is_deterministic(self):
        policy = SupervisionPolicy(max_attempts=5)
        assert policy.backoff_delay(9, 2) == policy.backoff_delay(9, 2)

    def test_backoff_grows_exponentially_to_cap(self):
        policy = SupervisionPolicy(
            backoff_base=0.1, backoff_factor=2.0, backoff_max=0.4, backoff_jitter=0.0
        )
        delays = [policy.backoff_delay(1, attempt) for attempt in (1, 2, 3, 4, 9)]
        assert delays == [0.1, 0.2, 0.4, 0.4, 0.4]

    def test_backoff_jitter_bounded_and_seed_dependent(self):
        policy = SupervisionPolicy(
            backoff_base=1.0, backoff_factor=1.0, backoff_max=1.0, backoff_jitter=0.5
        )
        delays = {policy.backoff_delay(seed, 1) for seed in range(32)}
        assert all(1.0 <= d <= 1.5 for d in delays)
        assert len(delays) > 1  # jitter actually varies across seeds

    def test_zero_base_disables_backoff(self):
        policy = SupervisionPolicy(backoff_base=0.0)
        assert policy.backoff_delay(7, 3) == 0.0


# ----------------------------------------------------------------- chaos plan


class TestChaosPlan:
    def test_inactive_by_default(self):
        assert not ChaosPlan().active
        assert ChaosPlan().decide(1, 0) is None

    def test_decide_is_deterministic_and_attempt_gated(self):
        plan = ChaosPlan(kill=0.3, hang=0.3, error=0.3, seed=5, attempts=2)
        for seed in range(50):
            assert plan.decide(seed, 0) == plan.decide(seed, 0)
            assert plan.decide(seed, 2) is None  # past the eligible dispatches
        decisions = {plan.decide(seed, 0) for seed in range(200)}
        assert {"kill", "hang", "error"} <= decisions

    def test_certain_kill_band(self):
        plan = ChaosPlan(kill=1.0, seed=1)
        assert all(plan.decide(seed, 0) == "kill" for seed in range(20))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kill": -0.1},
            {"kill": 1.5},
            {"kill": 0.6, "hang": 0.6},
            {"attempts": 0},
            {"hang_seconds": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ChaosPlan(**kwargs)

    def test_dict_round_trip(self):
        plan = ChaosPlan(kill=0.1, hang=0.2, error=0.3, seed=9, attempts=2)
        assert ChaosPlan.from_dict(plan.to_dict()) == plan
        with pytest.raises(ValueError):
            ChaosPlan.from_dict({"kind": "not-chaos"})

    def test_parse_spec(self):
        plan = ChaosPlan.parse("kill=0.2, hang=0.1,error=0.3,attempts=2", seed=4)
        assert plan == ChaosPlan(kill=0.2, hang=0.1, error=0.3, seed=4, attempts=2)

    @pytest.mark.parametrize("spec", ["kill", "frob=1", "kill=0.2,oops=3"])
    def test_parse_rejects_bad_specs(self, spec):
        with pytest.raises(ValueError):
            ChaosPlan.parse(spec)

    def test_arm_probe_error_and_disarm(self):
        plan = ChaosPlan(error=1.0, seed=2)
        try:
            initializer(plan.to_dict())
            assert armed() == plan
            with pytest.raises(ChaosError):
                probe(7, 0)
            probe(7, plan.attempts)  # past the gate: clean
        finally:
            arm(None)
        probe(7, 0)  # disarmed: no-op


# ------------------------------------------------- differential (supervision)


class TestSupervisionDifferential:
    def test_no_policy_uses_original_path(self):
        with SweepRunner(processes=1) as runner:
            assert not runner._supervised

    def test_inert_policy_uses_original_path(self):
        with SweepRunner(processes=1, supervision=SupervisionPolicy()) as runner:
            assert not runner._supervised

    def test_disabled_supervision_bitwise_identical_checkpoints(self, tmp_path):
        """The zero-overhead contract at the byte level: an inert policy
        must leave the on-disk records byte-for-byte what the plain runner
        writes (single-process, so append order is deterministic)."""
        kwargs = dict(processes=1, resume=False)
        with SweepRunner(checkpoint_dir=str(tmp_path / "a"), **kwargs) as runner:
            plain = runner.run_grid(
                "supervise-test-ok", GRID, trials=TRIALS, master_seed=MASTER_SEED
            )
        with SweepRunner(
            checkpoint_dir=str(tmp_path / "b"),
            supervision=SupervisionPolicy(),
            **kwargs,
        ) as runner:
            inert = runner.run_grid(
                "supervise-test-ok", GRID, trials=TRIALS, master_seed=MASTER_SEED
            )
        assert cells_data(plain.cells) == cells_data(inert.cells)
        path_a = CheckpointStore(str(tmp_path / "a")).path_for(
            "supervise-test-ok", MASTER_SEED
        )
        path_b = CheckpointStore(str(tmp_path / "b")).path_for(
            "supervise-test-ok", MASTER_SEED
        )
        with open(path_a, "rb") as a, open(path_b, "rb") as b:
            assert a.read() == b.read()

    def test_active_supervision_matches_serial_in_process(self):
        policy = SupervisionPolicy(timeout=30.0, max_attempts=3, backoff_base=0.0)
        with SweepRunner(processes=1, supervision=policy) as runner:
            sweep = runner.run_grid(
                "supervise-test-ok", GRID, trials=TRIALS, master_seed=MASTER_SEED
            )
        assert cells_data(sweep.cells) == cells_data(serial_reference().cells)

    def test_active_supervision_matches_serial_on_pool(self):
        policy = SupervisionPolicy(timeout=30.0, max_attempts=3, backoff_base=0.0)
        with SweepRunner(processes=2, supervision=policy) as runner:
            sweep = runner.run_grid(
                "supervise-test-ok", GRID, trials=TRIALS, master_seed=MASTER_SEED
            )
        assert cells_data(sweep.cells) == cells_data(serial_reference().cells)

    def test_chaos_requires_active_supervision(self):
        with pytest.raises(ValueError):
            SweepRunner(processes=2, chaos=ChaosPlan(kill=0.5))
        with pytest.raises(ValueError):
            SweepRunner(
                processes=2,
                chaos=ChaosPlan(kill=0.5),
                supervision=SupervisionPolicy(),
            )

    def test_inactive_chaos_plan_is_allowed_without_policy(self):
        with SweepRunner(processes=1, chaos=ChaosPlan()) as runner:
            assert not runner._supervised


# ------------------------------------------------------------ retry + records


class TestRetryAndAttemptRecords:
    def _run_flaky(self, processes, max_attempts=3, **kwargs):
        policy = SupervisionPolicy(max_attempts=max_attempts, backoff_base=0.0)
        metrics = MetricsRegistry()
        with SweepRunner(
            processes=processes, supervision=policy, metrics=metrics, **kwargs
        ) as runner:
            sweep = runner.run_grid(
                "supervise-test-flaky", GRID, trials=TRIALS, master_seed=MASTER_SEED
            )
        return sweep, metrics.snapshot()["counters"]

    @pytest.mark.parametrize("processes", [1, 2])
    def test_deterministic_failures_exhaust_attempts(self, processes):
        sweep, counters = self._run_flaky(processes)
        failures = [f for cell in sweep.cells for f in cell.failures]
        assert failures, "the flaky trial must fail for some seeds"
        assert all(f.attempts == 3 for f in failures)
        assert all(f.kind == "error" for f in failures)
        assert all(f.error == "RuntimeError" for f in failures)
        # Two retries per deterministic failure were scheduled and burned.
        assert counters["sweep/retry/scheduled"] == 2 * len(failures)

    def test_pool_path_counts_exhaustion(self):
        _sweep, counters = self._run_flaky(2)
        failures = counters["sweep/trials_failed"]
        assert counters["sweep/retry/exhausted"] == failures > 0

    def test_attempt_records_reach_checkpoint_and_round_trip(self, tmp_path):
        self._run_flaky(1, checkpoint_dir=str(tmp_path))
        store = CheckpointStore(str(tmp_path))
        records = store.load("supervise-test-flaky", MASTER_SEED)
        failed = [r for r in records.values() if r["status"] == "failed"]
        assert failed
        for record in failed:
            assert record["failure"]["attempts"] == 3
            assert "kind" not in record["failure"]  # "error" is the default
            round_tripped = checkpoint_record_from_dict(
                json.loads(json.dumps(record))
            )
            assert round_tripped == record

    def test_default_failure_record_is_schema_identical(self):
        """A plain (unsupervised) failure record must not grow new keys."""
        record = checkpoint_record_to_dict(
            trial="t",
            params={"n": 1},
            master_seed=0,
            stream=0,
            seed=1,
            failure={"error": "E", "message": "m", "traceback": ""},
        )
        assert set(record["failure"]) == {"error", "message", "traceback"}

    def test_trial_failure_str_mentions_disposition(self):
        failure = TrialFailure(
            seed=1, error="E", message="m", kind="timeout", attempts=3
        )
        assert "[timeout]" in str(failure) and "attempts: 3" in str(failure)
        plain = TrialFailure(seed=1, error="E", message="m")
        assert "[" not in str(plain)

    def test_chaos_error_injection_retried_to_success(self):
        """error=1.0 on the first dispatch only: with one retry allowed the
        grid completes clean and matches the serial reference."""
        policy = SupervisionPolicy(timeout=30.0, max_attempts=2, backoff_base=0.0)
        plan = ChaosPlan(error=1.0, seed=11, attempts=1)
        metrics = MetricsRegistry()
        with SweepRunner(
            processes=2, supervision=policy, chaos=plan, metrics=metrics
        ) as runner:
            sweep = runner.run_grid(
                "supervise-test-ok", GRID, trials=TRIALS, master_seed=MASTER_SEED
            )
        assert cells_data(sweep.cells) == cells_data(serial_reference().cells)
        counters = metrics.snapshot()["counters"]
        assert counters["sweep/retry/scheduled"] == len(GRID) * TRIALS

    def test_chaos_error_without_retries_fails_structurally(self):
        policy = SupervisionPolicy(timeout=30.0)  # active, but no retries
        plan = ChaosPlan(error=1.0, seed=11, attempts=1)
        with SweepRunner(processes=2, supervision=policy, chaos=plan) as runner:
            sweep = runner.run_grid(
                "supervise-test-ok", GRID, trials=TRIALS, master_seed=MASTER_SEED
            )
        for cell in sweep.cells:
            assert not cell.trials
            assert all(f.error == "ChaosError" for f in cell.failures)


# ----------------------------------------------- self-healing + chaos SIGKILL


class TestChaosSelfHealing:
    def test_sigkill_mid_chunk_completes_via_self_healing(self, tmp_path):
        """The headline acceptance test: every worker is SIGKILLed on the
        first dispatch of every trial; the watchdog reaps the stall, the
        pool respawns, the re-dispatch runs clean, and the results and the
        on-disk records are exactly the reference — zero lost, zero
        duplicated."""
        policy = SupervisionPolicy(timeout=5.0, max_attempts=2, backoff_base=0.0)
        plan = ChaosPlan(kill=1.0, seed=99, attempts=1)
        metrics = MetricsRegistry()
        with SweepRunner(
            processes=2,
            checkpoint_dir=str(tmp_path),
            supervision=policy,
            chaos=plan,
            metrics=metrics,
        ) as runner:
            sweep = runner.run_grid(
                "supervise-test-ok", GRID, trials=TRIALS, master_seed=MASTER_SEED
            )
        assert cells_data(sweep.cells) == cells_data(serial_reference().cells)
        counters = metrics.snapshot()["counters"]
        assert counters["sweep/pool_restart"] >= 1
        assert counters["sweep/timeout/watchdog_fires"] >= 1

        store = CheckpointStore(str(tmp_path))
        raw = read_raw_records(store, "supervise-test-ok", MASTER_SEED)
        assert len(raw) == len(GRID) * TRIALS  # zero lost, zero duplicated
        keys = {
            checkpoint_key(
                r["trial"], r["params"], r["master_seed"], r["stream"], r["seed"]
            )
            for r in raw
        }
        assert len(keys) == len(raw)
        assert all(r["status"] == "ok" for r in raw)

    def test_resume_after_chaos_is_a_pure_cache_hit(self, tmp_path):
        policy = SupervisionPolicy(timeout=5.0, max_attempts=2, backoff_base=0.0)
        plan = ChaosPlan(kill=1.0, seed=99, attempts=1)
        with SweepRunner(
            processes=2,
            checkpoint_dir=str(tmp_path),
            supervision=policy,
            chaos=plan,
        ) as runner:
            runner.run_grid(
                "supervise-test-ok", GRID, trials=TRIALS, master_seed=MASTER_SEED
            )
        metrics = MetricsRegistry()
        with SweepRunner(
            processes=2, checkpoint_dir=str(tmp_path), metrics=metrics
        ) as runner:
            resumed = runner.run_grid(
                "supervise-test-ok", GRID, trials=TRIALS, master_seed=MASTER_SEED
            )
        counters = metrics.snapshot()["counters"]
        assert counters.get("sweep/trials_executed", 0) == 0
        assert counters["sweep/trials_cached"] == len(GRID) * TRIALS
        assert cells_data(resumed.cells) == cells_data(serial_reference().cells)

    def test_mixed_chaos_full_grid_still_converges(self):
        """Kills, hangs, and errors together (summing to certainty) on the
        first dispatch: supervision must still complete the healthy grid."""
        policy = SupervisionPolicy(timeout=1.0, max_attempts=2, backoff_base=0.0)
        plan = ChaosPlan(
            kill=0.4, hang=0.2, error=0.4, seed=21, attempts=1, hang_seconds=30.0
        )
        small_grid = grid_product(n=[32], C=[2])
        with SweepRunner(processes=2, supervision=policy, chaos=plan) as runner:
            sweep = runner.run_grid(
                "supervise-test-ok", small_grid, trials=TRIALS, master_seed=MASTER_SEED
            )
        reference = serial_reference(grid=small_grid)
        assert cells_data(sweep.cells) == cells_data(reference.cells)


# ------------------------------------------------------------------ quarantine


class TestQuarantine:
    GRID = grid_product(n=[32], sleep_s=[1.2])

    def _quarantine_run(self, tmp_path):
        policy = SupervisionPolicy(timeout=0.3, quarantine_after=2, max_attempts=2)
        metrics = MetricsRegistry()
        with SweepRunner(
            processes=2,
            checkpoint_dir=str(tmp_path),
            supervision=policy,
            metrics=metrics,
        ) as runner:
            sweep = runner.run_grid(
                "supervise-test-sleep", self.GRID, trials=2, master_seed=1
            )
        return sweep, metrics.snapshot()["counters"]

    def test_hung_trials_are_quarantined_not_fatal(self, tmp_path):
        sweep, counters = self._quarantine_run(tmp_path)
        failures = [f for cell in sweep.cells for f in cell.failures]
        assert len(failures) == 2
        assert all(f.kind in ("timeout", "crash") for f in failures)
        assert all(f.attempts == 2 for f in failures)
        assert all(f.error == "TrialQuarantined" for f in failures)
        assert counters["sweep/quarantine/trials"] == 2
        assert counters["sweep/pool_restart"] >= 2

    def test_quarantined_trials_rerun_on_retry_failures_resume(self, tmp_path):
        self._quarantine_run(tmp_path)
        # Resume with a generous timeout: the quarantined records must
        # re-run (retry_failures) and now complete.
        policy = SupervisionPolicy(timeout=30.0)
        metrics = MetricsRegistry()
        with SweepRunner(
            processes=2,
            checkpoint_dir=str(tmp_path),
            retry_failures=True,
            supervision=policy,
            metrics=metrics,
        ) as runner:
            resumed = runner.run_grid(
                "supervise-test-sleep", self.GRID, trials=2, master_seed=1
            )
        counters = metrics.snapshot()["counters"]
        assert counters["sweep/trials_executed"] == 2
        assert counters.get("sweep/trials_cached", 0) == 0
        assert all(not cell.failures for cell in resumed.cells)
        assert all(len(cell.trials) == 2 for cell in resumed.cells)

    def test_degrade_in_process_completes_suspects_inline(self):
        """With graceful degradation the quarantined sleeper runs in the
        coordinator (no watchdog there) and completes instead of failing."""
        policy = SupervisionPolicy(
            timeout=0.3, quarantine_after=1, degrade_in_process=True
        )
        metrics = MetricsRegistry()
        with SweepRunner(
            processes=2, supervision=policy, metrics=metrics
        ) as runner:
            sweep = runner.run_grid(
                "supervise-test-sleep", self.GRID, trials=2, master_seed=1
            )
        counters = metrics.snapshot()["counters"]
        assert counters["sweep/quarantine/degraded"] == 2
        assert all(not cell.failures for cell in sweep.cells)
        assert all(len(cell.trials) == 2 for cell in sweep.cells)


# -------------------------------------------------------------- in-process sup


class TestInProcessSupervision:
    def test_no_pool_supervised_path_retries(self):
        policy = SupervisionPolicy(max_attempts=2, backoff_base=0.0)
        metrics = MetricsRegistry()
        with SweepRunner(processes=1, supervision=policy, metrics=metrics) as runner:
            sweep = runner.run_grid(
                "supervise-test-flaky", GRID, trials=TRIALS, master_seed=MASTER_SEED
            )
        counters = metrics.snapshot()["counters"]
        failures = [f for cell in sweep.cells for f in cell.failures]
        assert counters["sweep/retry/scheduled"] == len(failures)
        assert all(f.attempts == 2 for f in failures)

    def test_supervisor_empty_task_list_is_a_noop(self):
        with SweepRunner(processes=1, supervision=SupervisionPolicy()) as runner:
            supervisor = TrialSupervisor(runner, SupervisionPolicy(timeout=1.0))
            assert list(supervisor.run([])) == []
