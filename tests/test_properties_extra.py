"""Extra hypothesis property tests across module boundaries."""

from hypothesis import given, settings, strategies as st

from repro.core.cohorts import reference_election
from repro.sim import Feedback
from repro.sim.context import MarkRecord
from repro.sim.serialize import FORMAT_VERSION, trace_from_dict
from repro.sim.trace import ChannelRound, ExecutionTrace, RoundRecord
from repro.tree import ChannelTree


# ---------------------------------------------------------------- tree algebra

@given(
    exponent=st.integers(min_value=1, max_value=10),
    data=st.data(),
)
def test_ancestor_index_within_level_width(exponent, data):
    tree = ChannelTree(1 << exponent)
    leaf = data.draw(st.integers(min_value=1, max_value=tree.num_leaves))
    level = data.draw(st.integers(min_value=0, max_value=tree.height))
    index = tree.ancestor_index_in_level(leaf, level)
    assert 1 <= index <= tree.level_width(level)


@given(
    exponent=st.integers(min_value=1, max_value=8),
    data=st.data(),
)
def test_ancestor_monotone_in_leaf(exponent, data):
    """At every level, the ancestor index is non-decreasing in the leaf."""
    tree = ChannelTree(1 << exponent)
    level = data.draw(st.integers(min_value=0, max_value=tree.height))
    indices = [
        tree.ancestor_index_in_level(leaf, level)
        for leaf in range(1, tree.num_leaves + 1)
    ]
    assert indices == sorted(indices)


@given(
    exponent=st.integers(min_value=1, max_value=8),
    data=st.data(),
)
def test_divergence_at_most_adjacent(exponent, data):
    """Adjacent leaves diverge at least as deep as any enclosing pair."""
    tree = ChannelTree(1 << exponent)
    if tree.num_leaves < 3:
        return
    a = data.draw(st.integers(min_value=1, max_value=tree.num_leaves - 2))
    c = data.draw(st.integers(min_value=a + 2, max_value=tree.num_leaves))
    b = data.draw(st.integers(min_value=a + 1, max_value=c - 1))
    # The pair (a, c) diverges no deeper than (a, b) or (b, c):
    assert tree.divergence_level(a, c) <= max(
        tree.divergence_level(a, b), tree.divergence_level(b, c)
    )


# ----------------------------------------------------------- reference oracle

@settings(max_examples=60, deadline=None)
@given(
    exponent=st.integers(min_value=1, max_value=7),
    data=st.data(),
)
def test_reference_leader_invariant_under_order(exponent, data):
    """The oracle's leader depends only on the leaf *set*, not its order."""
    tree = ChannelTree(1 << exponent)
    size = data.draw(st.integers(min_value=1, max_value=tree.num_leaves))
    leaves = data.draw(
        st.lists(
            st.integers(min_value=1, max_value=tree.num_leaves),
            min_size=size,
            max_size=size,
            unique=True,
        )
    )
    shuffled = data.draw(st.permutations(leaves))
    assert (
        reference_election(tree, leaves).leader
        == reference_election(tree, list(shuffled)).leader
    )


@settings(max_examples=60, deadline=None)
@given(
    exponent=st.integers(min_value=2, max_value=7),
    data=st.data(),
)
def test_reference_leader_is_member(exponent, data):
    tree = ChannelTree(1 << exponent)
    size = data.draw(st.integers(min_value=1, max_value=tree.num_leaves))
    leaves = data.draw(
        st.lists(
            st.integers(min_value=1, max_value=tree.num_leaves),
            min_size=size,
            max_size=size,
            unique=True,
        )
    )
    reference = reference_election(tree, leaves)
    assert reference.leader in leaves
    # Monotone structural fact: the leader never beats a leaf strictly to
    # its left *in the same phase-1 pair*; globally, the leader is the
    # master of every cohort it ever belonged to, which starts at cID 1.
    assert reference.phase_count <= (len(leaves) - 1).bit_length() + 1


# ------------------------------------------------------------- serialization

def trace_strategy():
    feedback = st.sampled_from([Feedback.SILENCE, Feedback.MESSAGE, Feedback.COLLISION])
    channel_round = st.builds(
        ChannelRound,
        transmitters=st.tuples(*[st.integers(min_value=1, max_value=9)] * 2),
        receivers=st.tuples(),
        feedback=feedback,
        message=st.one_of(st.none(), st.integers(), st.text(max_size=5)),
    )
    record = st.builds(
        RoundRecord,
        round_index=st.integers(min_value=1, max_value=100),
        channels=st.dictionaries(
            st.integers(min_value=1, max_value=8), channel_round, max_size=4
        ),
        active_count=st.integers(min_value=0, max_value=50),
    )
    mark = st.builds(
        MarkRecord,
        round_index=st.integers(min_value=1, max_value=100),
        node_id=st.integers(min_value=1, max_value=50),
        label=st.text(min_size=1, max_size=10),
        payload=st.one_of(st.none(), st.integers(), st.text(max_size=5)),
    )
    return st.builds(
        lambda rounds, marks: _mk_trace(rounds, marks),
        st.lists(record, max_size=5),
        st.lists(mark, max_size=5),
    )


def _mk_trace(rounds, marks):
    trace = ExecutionTrace()
    trace.rounds = rounds
    trace.marks = marks
    return trace


@settings(max_examples=100, deadline=None)
@given(trace_strategy())
def test_trace_roundtrip_property(trace):
    """Any trace structurally round-trips through the JSON format."""
    payload = {
        "format_version": FORMAT_VERSION,
        "marks": [
            {
                "round": m.round_index,
                "node": m.node_id,
                "label": m.label,
                "payload": m.payload,
            }
            for m in trace.marks
        ],
        "rounds_detail": [
            {
                "round": r.round_index,
                "active": r.active_count,
                "channels": {
                    str(c): {
                        "transmitters": list(a.transmitters),
                        "receivers": list(a.receivers),
                        "feedback": a.feedback.value,
                        "message": a.message,
                    }
                    for c, a in r.channels.items()
                },
            }
            for r in trace.rounds
        ],
    }
    restored = trace_from_dict(payload)
    assert len(restored.rounds) == len(trace.rounds)
    assert len(restored.marks) == len(trace.marks)
    for original, back in zip(trace.rounds, restored.rounds):
        assert back.round_index == original.round_index
        for channel in original.channels:
            assert (
                back.channels[channel].feedback
                is original.channels[channel].feedback
            )
