"""Golden-file test for the ``repro faults`` CLI sweep.

Pins the full stdout of one small, seeded invocation — header, table, and
verdict line — so any drift in the fault models, the seed-stream layout,
the intensity mapping, or the table renderer shows up as a readable diff.
Regenerate after an intentional change with::

    python -m repro faults --n 64 --channels 8 --active 8 --trials 4 \
        --protocols two-active fnw-general --intensities 0.2 0.6 \
        > tests/data/golden_faults_cli.txt
"""

import pathlib

import pytest

from repro.cli import build_parser, main

GOLDEN = pathlib.Path(__file__).parent / "data" / "golden_faults_cli.txt"

ARGS = [
    "faults",
    "--n", "64",
    "--channels", "8",
    "--active", "8",
    "--trials", "4",
    "--protocols", "two-active", "fnw-general",
    "--intensities", "0.2", "0.6",
]


class TestFaultsCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["faults"])
        assert args.n == 256
        assert args.channels == 16
        assert args.trials == 30
        assert list(args.models) == ["jamming", "cd-noise", "churn"]

    def test_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["faults", "--models", "meteor-strike"])

    def test_rejects_zero_trials(self):
        with pytest.raises(SystemExit):
            main(["faults", "--trials", "0"])

    def test_golden_output(self, capsys):
        assert main(ARGS) == 0
        out = capsys.readouterr().out
        assert out == GOLDEN.read_text(encoding="utf-8")
