"""Golden-file tests for the ``repro faults`` CLI sweep.

Pins the full stdout of two small, seeded invocations — header, table,
verdict line, and (bare only) the unsolved-cells diagnostic — so any drift
in the fault models, the hardening combinators, the seed-stream layout, the
intensity mapping, or the table renderer shows up as a readable diff.  The
exit code is pinned on both paths: the bare sweep contains jamming cells no
trial survives, so it must exit 1; the hardened sweep recovers every cell
and must exit 0.  Regenerate after an intentional change with::

    python -m repro faults --n 64 --channels 8 --active 8 --trials 4 \
        --protocols two-active fnw-general --intensities 0.2 0.6 \
        > tests/data/golden_faults_cli.txt
    python -m repro faults --n 64 --channels 8 --active 8 --trials 4 \
        --protocols two-active fnw-general --intensities 0.2 0.6 --harden \
        > tests/data/golden_faults_cli_hardened.txt
"""

import pathlib

import pytest

from repro.cli import build_parser, main

DATA = pathlib.Path(__file__).parent / "data"
GOLDEN = DATA / "golden_faults_cli.txt"
GOLDEN_HARDENED = DATA / "golden_faults_cli_hardened.txt"

ARGS = [
    "faults",
    "--n", "64",
    "--channels", "8",
    "--active", "8",
    "--trials", "4",
    "--protocols", "two-active", "fnw-general",
    "--intensities", "0.2", "0.6",
]


class TestFaultsCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["faults"])
        assert args.n == 256
        assert args.channels == 16
        assert args.trials == 30
        assert list(args.models) == ["jamming", "cd-noise", "churn"]
        assert args.harden is False

    def test_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["faults", "--models", "meteor-strike"])

    def test_rejects_zero_trials(self):
        with pytest.raises(SystemExit):
            main(["faults", "--trials", "0"])

    def test_golden_output_bare_exits_1_on_unsolved_cells(self, capsys):
        # The bare sweep's jamming cells are jammed to the round limit in
        # every trial, so the command reports them and exits 1.
        assert main(ARGS) == 1
        out = capsys.readouterr().out
        assert "unsolved cells" in out
        assert out == GOLDEN.read_text(encoding="utf-8")

    def test_golden_output_hardened_exits_0(self, capsys):
        # With --harden every cell solves at least once: exit 0, no
        # unsolved-cells diagnostic.
        assert main(ARGS + ["--harden"]) == 0
        out = capsys.readouterr().out
        assert "unsolved cells" not in out
        assert "hardened=repro.robust" in out
        assert out == GOLDEN_HARDENED.read_text(encoding="utf-8")

    def test_solved_path_exits_0(self, capsys):
        # A sweep whose every cell solves at least once (no jamming) keeps
        # the historical exit-0 contract on the bare path too.
        args = [
            "faults", "--n", "64", "--channels", "8", "--active", "8",
            "--trials", "4", "--protocols", "fnw-general",
            "--models", "churn", "--intensities", "0.2",
        ]
        assert main(args) == 0
        assert "unsolved cells" not in capsys.readouterr().out
