"""Documentation consistency gates.

Docs drift is a bug class like any other: these tests pin the statements in
README/DESIGN/docs to the code they describe, so renaming an experiment or
adding an example without updating the documents fails the suite.
"""

import pathlib
import re

from repro.experiments import REGISTRY

ROOT = pathlib.Path(__file__).resolve().parent.parent


def read(name):
    return (ROOT / name).read_text(encoding="utf-8")


class TestDesignDocument:
    def test_every_registry_id_indexed(self):
        design = read("DESIGN.md")
        for key in REGISTRY:
            number = key[1:]
            assert re.search(rf"\bE{number}\b", design), f"{key} missing from DESIGN.md"

    def test_paper_identity_check_present(self):
        design = read("DESIGN.md")
        assert "Fineman" in design
        assert "PODC 2016" in design

    def test_substitution_table_present(self):
        assert "Substitutions" in read("DESIGN.md")


class TestReadme:
    def test_examples_table_matches_directory(self):
        readme = read("README.md")
        examples = {p.name for p in (ROOT / "examples").glob("*.py")}
        for example in examples:
            assert example in readme, f"{example} not documented in README"

    def test_mentions_all_doc_files(self):
        readme = read("README.md")
        for doc in ("model.md", "algorithms.md", "paper_mapping.md"):
            assert doc in readme

    def test_install_command_present(self):
        assert "pip install -e" in read("README.md")


class TestExperimentsDocument:
    def test_generated_and_complete(self):
        experiments = read("EXPERIMENTS.md")
        assert experiments.startswith("# EXPERIMENTS")
        assert "python -m repro report" in experiments
        # One section per registry entry (e2 folded into e1's section).
        for key in REGISTRY:
            if key == "e2":
                continue
            number = key[1:]
            assert re.search(rf"## E{number}\b|## E1/E2", experiments), key
        assert experiments.count("**Measured verdict.**") >= len(REGISTRY) - 1


class TestDocsDirectory:
    def test_paper_mapping_names_real_modules(self):
        import importlib

        mapping = read("docs/paper_mapping.md")
        for module in re.findall(r"`(repro\.[a-z_.]+)`", mapping):
            # Resolve module or module.attribute references.
            parts = module.split(".")
            for split in range(len(parts), 0, -1):
                try:
                    mod = importlib.import_module(".".join(parts[:split]))
                except ImportError:
                    continue
                obj = mod
                try:
                    for attribute in parts[split:]:
                        obj = getattr(obj, attribute)
                except AttributeError:
                    break
                else:
                    break
            else:
                raise AssertionError(f"paper_mapping.md references unknown {module}")

    def test_tutorial_code_blocks_reference_real_api(self):
        tutorial = read("docs/tutorial.md")
        assert "two_active_trial" in tutorial
        from repro.experiments.common import two_active_trial  # noqa: F401

    def test_model_doc_names_real_tests(self):
        model = read("docs/model.md")
        for test_file in re.findall(r"`(test_[a-z_]+\.py)", model):
            assert (ROOT / "tests" / test_file).exists(), test_file
