"""Differential tests: instrumentation is provably observer-effect-free.

For every core protocol and two baselines, across a seed grid, a run with a
full instrumentation stack attached (``EventLog`` + ``RegistrySink`` behind
a ``TeeSink``) must produce *exactly* the execution an uninstrumented run
produces: same ``solved`` / ``winner`` / ``rounds``, and a bitwise-identical
serialized trace (rounds, channels, feedback, payloads, marks).

This is the contract that makes ``repro profile`` numbers trustworthy: the
profile describes the very execution the un-instrumented engine would have
run, not a perturbed cousin.
"""

import json

import pytest

from repro import (
    BinarySearchCD,
    Decay,
    FNWGeneral,
    LeafElection,
    Reduce,
    TwoActive,
    activate_pair,
    activate_random,
    solve,
)
from repro.obs import EventLog, RegistrySink, TeeSink
from repro.sim import Activation, result_to_dict

SEEDS = (0, 1, 2, 3, 4)


def _leaf_assignment():
    # Occupy 5 of the 8 usable leaves of the C=16 channel tree.
    return {1: 2, 2: 3, 3: 5, 4: 7, 5: 8}


#: (name, protocol factory, solve kwargs factory) — one row per protocol.
CASES = [
    (
        "two-active",
        TwoActive,
        lambda seed: dict(n=64, num_channels=8, activation=activate_pair(64, seed=seed)),
    ),
    (
        "general",
        FNWGeneral,
        lambda seed: dict(
            n=128, num_channels=8, activation=activate_random(128, 20, seed=seed)
        ),
    ),
    (
        "reduce",
        Reduce,
        lambda seed: dict(
            n=64,
            num_channels=1,
            activation=activate_random(64, 16, seed=seed),
            stop_on_solve=False,
        ),
    ),
    (
        "leaf-election",
        lambda: LeafElection(_leaf_assignment()),
        lambda seed: dict(
            n=16,
            num_channels=16,
            activation=Activation(active_ids=sorted(_leaf_assignment())),
        ),
    ),
    (
        "baseline-decay",
        Decay,
        lambda seed: dict(
            n=64, num_channels=1, activation=activate_random(64, 5, seed=seed)
        ),
    ),
    (
        "baseline-binary-search-cd",
        BinarySearchCD,
        lambda seed: dict(
            n=64, num_channels=4, activation=activate_random(64, 9, seed=seed)
        ),
    ),
]


def _run(factory, kwargs, seed, instrument):
    return solve(
        factory(), seed=seed, record_trace=True, instrument=instrument, **kwargs
    )


@pytest.mark.parametrize("name,factory,make_kwargs", CASES, ids=[c[0] for c in CASES])
@pytest.mark.parametrize("seed", SEEDS)
def test_instrumented_run_is_bitwise_identical(name, factory, make_kwargs, seed):
    kwargs = make_kwargs(seed)
    plain = _run(factory, kwargs, seed, instrument=None)
    log = EventLog()
    sink = RegistrySink()
    instrumented = _run(factory, kwargs, seed, instrument=TeeSink([log, sink]))

    assert instrumented.solved == plain.solved
    assert instrumented.winner == plain.winner
    assert instrumented.rounds == plain.rounds
    assert instrumented.solved_round == plain.solved_round
    assert instrumented.all_terminated == plain.all_terminated

    # The whole serialized execution — trace rounds, channel activity,
    # feedback, payloads, and marks — must match byte for byte.
    plain_json = json.dumps(result_to_dict(plain), sort_keys=True)
    instrumented_json = json.dumps(result_to_dict(instrumented), sort_keys=True)
    assert plain_json == instrumented_json

    # And the instrumentation actually observed the execution it rode on.
    assert len(log.events) == plain.rounds
    assert sink.registry.counter("rounds").value == float(plain.rounds)


@pytest.mark.parametrize("seed", SEEDS[:3])
def test_event_stream_is_deterministic(seed):
    """Two instrumented runs of the same seed emit identical event content."""

    def capture():
        log = EventLog()
        solve(
            FNWGeneral(),
            n=128,
            num_channels=8,
            activation=activate_random(128, 20, seed=seed),
            seed=seed,
            instrument=log,
        )
        return [
            (e.round_index, e.active_count, dict(e.transmitters), dict(e.listeners), dict(e.outcomes))
            for e in log.events
        ]

    assert capture() == capture()


def test_event_stream_mirrors_trace():
    """Per-round event totals equal what the recorded trace says happened."""
    log = EventLog()
    result = solve(
        FNWGeneral(),
        n=256,
        num_channels=16,
        activation=activate_random(256, 40, seed=11),
        seed=11,
        record_trace=True,
        instrument=log,
    )
    assert result.trace.transmitter_profile() == [
        e.total_transmitters for e in log.events
    ]
    trace_outcomes = result.trace.outcome_counts()
    event_outcomes = {"silence": 0, "message": 0, "collision": 0}
    for event in log.events:
        for kind, count in event.outcome_counts().items():
            event_outcomes[kind] += count
    assert event_outcomes == trace_outcomes
