"""Property tests: every arrival process emits well-formed schedules.

Whatever the process kind and parameters, a materialized
:class:`~repro.sim.arrivals.ArrivalSchedule` must satisfy the container's
contract — births inside ``[1, horizon]`` and packet ids dense ``1..size``
in birth order — because everything downstream (activation compilation,
per-packet accounting, backlog trajectories) assumes it.  Hypothesis
drives the parameter space across Poisson, batch, and diurnal processes,
including the edge cases behind PR 8's validation fixes: ``horizon=0``,
``rate=0`` (which must inject *nothing* for batch streams too), batch
starts beyond the horizon, and replayed schedules.
"""

from hypothesis import given, settings, strategies as st

from repro.sim.arrivals import (
    ArrivalSchedule,
    BatchArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    ReplayArrivals,
    build_process,
)

_rates = st.floats(min_value=0.0, max_value=2.0, allow_nan=False)
_horizons = st.integers(min_value=0, max_value=120)
_seeds = st.integers(min_value=0, max_value=2**31 - 1)

_processes = st.one_of(
    st.builds(
        PoissonArrivals, _rates, initial=st.integers(min_value=0, max_value=8)
    ),
    st.builds(
        BatchArrivals,
        st.integers(min_value=0, max_value=6),
        st.integers(min_value=1, max_value=40),
        start=st.integers(min_value=1, max_value=160),
    ),
    st.builds(
        DiurnalArrivals,
        _rates,
        amplitude=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        period=st.none() | st.integers(min_value=2, max_value=60),
    ),
    st.builds(
        build_process,
        st.sampled_from(["poisson", "batch", "diurnal"]),
        rate=_rates,
        initial=st.integers(min_value=0, max_value=4),
        # period=0 means "kind's default"; 1 is rejected by DiurnalArrivals.
        period=st.just(0) | st.integers(min_value=2, max_value=40),
        amplitude=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    ),
)


def _assert_well_formed(schedule: ArrivalSchedule, horizon: int) -> None:
    assert schedule.horizon == horizon
    # Ids are dense 1..size, assigned in birth order.
    assert [nid for nid, _ in schedule.births] == list(
        range(1, schedule.size + 1)
    )
    births = [born for _, born in schedule.births]
    assert all(1 <= born <= horizon for born in births)
    assert births == sorted(births)


@given(process=_processes, horizon=_horizons, seed=_seeds)
@settings(max_examples=120)
def test_every_process_emits_well_formed_schedules(process, horizon, seed):
    if isinstance(process, PoissonArrivals) and process.initial and horizon == 0:
        return  # rejected explicitly by PoissonArrivals; covered in unit tests
    schedule = process.schedule(horizon=horizon, seed=seed)
    _assert_well_formed(schedule, horizon)
    if horizon == 0:
        assert schedule.size == 0
    # The schedule is the replayable ground truth: same inputs, same output,
    # and a replay process reproduces it verbatim under any seed.
    assert process.schedule(horizon=horizon, seed=seed) == schedule
    assert ReplayArrivals(schedule).schedule(horizon=horizon, seed=seed + 1) == schedule
    # Round-trip through the JSON-safe form preserves the contract.
    assert ArrivalSchedule.from_dict(schedule.to_dict()) == schedule


@given(
    rate=st.floats(min_value=0.0, max_value=0.02, allow_nan=False),
    period=st.integers(min_value=1, max_value=40),
    horizon=_horizons,
)
@settings(max_examples=60)
def test_rate_zero_batch_streams_stay_empty(rate, period, horizon):
    """Rates that round to an empty batch inject nothing at any horizon."""
    process = build_process("batch", rate=rate, period=period)
    if int(round(rate * period)) == 0:
        assert process.schedule(horizon=horizon, seed=0).size == 0
    else:
        assert process.schedule(horizon=max(1, horizon), seed=0).size >= 0
