"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.protocol == "fnw-general"
        assert args.n == 1 << 12
        assert args.channels == 64


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "e1" in out
        assert "e14" in out

    def test_solve_success_exit_code(self, capsys):
        code = main(
            [
                "solve",
                "--protocol",
                "fnw-general",
                "--n",
                "256",
                "--channels",
                "16",
                "--active",
                "20",
                "--seed",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "solved=True" in out

    def test_solve_with_trace(self, capsys):
        code = main(
            [
                "solve",
                "--protocol",
                "binary-search-cd",
                "--n",
                "64",
                "--channels",
                "4",
                "--seed",
                "0",
                "--trace",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "round |" in out

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "e99"]) == 2

    def test_verify_command(self, capsys, monkeypatch):
        # Shrink the battery so the CLI test stays fast.
        from repro.verify import verify_all as full_battery

        def small_battery(**_kwargs):
            return full_battery(
                splitcheck_channels=(4,), election_channels=(8,)
            )

        monkeypatch.setattr("repro.verify.verify_all", small_battery)
        assert main(["verify"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out

    def test_unknown_protocol(self):
        with pytest.raises(KeyError):
            main(["solve", "--protocol", "bogus", "--n", "16", "--channels", "4"])

    def test_save_and_replay_roundtrip(self, capsys, tmp_path):
        path = str(tmp_path / "run.json")
        assert (
            main(
                [
                    "solve",
                    "--protocol",
                    "fnw-general",
                    "--n",
                    "128",
                    "--channels",
                    "8",
                    "--active",
                    "20",
                    "--seed",
                    "4",
                    "--save-trace",
                    path,
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["replay", path, "--channels", "4"]) == 0
        out = capsys.readouterr().out
        assert "round |" in out
        assert "recorded rounds" in out


class TestSweepCommand:
    ARGS = [
        "sweep",
        "--trial", "two-active",
        "--axis", "n=32,64",
        "--axis", "C=4",
        "--trials", "2",
        "--seed", "1",
    ]

    def test_sweep_runs_and_reports(self, capsys):
        assert main(self.ARGS + ["--processes", "1"]) == 0
        out = capsys.readouterr().out
        assert "sweep: trial=two-active cells=2 trials/cell=2" in out
        assert "mean_rounds" in out
        assert "trials: 4 executed, 0 cached, 0 failed" in out

    def test_sweep_checkpointed_rerun_is_cached(self, capsys, tmp_path):
        args = self.ARGS + ["--processes", "1", "--checkpoint-dir", str(tmp_path)]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "trials: 0 executed, 4 cached, 0 failed" in out

    def test_sweep_rejects_bad_axis(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--trial", "two-active", "--axis", "nonsense"])

    def test_sweep_requires_an_axis(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--trial", "two-active", "--trials", "2"])

    def test_sweep_bool_axis_stays_bool(self, capsys):
        # true/false spellings parse to booleans (type-aware cell lookup);
        # an unknown trial name must fail loudly, not schedule anything.
        with pytest.raises(KeyError):
            main(["sweep", "--trial", "bogus", "--axis", "flag=true,false"])

    def test_sweep_supervised_flags_run_clean_grid(self, capsys):
        args = self.ARGS + [
            "--processes", "1", "--timeout", "30", "--max-attempts", "2",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "supervision=timeout=30.0 max_attempts=2" in out
        assert "trials: 4 executed, 0 cached, 0 failed" in out

    def test_sweep_chaos_kill_self_heals(self, capsys):
        # Every first dispatch SIGKILLs its worker; the supervised runner
        # must still complete the grid (self-healing + retry) with exit 0.
        args = self.ARGS + [
            "--processes", "2",
            "--timeout", "5", "--max-attempts", "2",
            "--chaos", "kill=1.0", "--chaos-seed", "3",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "chaos=kill=1.0" in out
        assert "trials: 4 executed, 0 cached, 0 failed" in out
        assert "pool restart(s)" in out

    def test_sweep_chaos_requires_supervision(self):
        with pytest.raises(SystemExit, match="--chaos requires supervision"):
            main(self.ARGS + ["--chaos", "kill=0.5"])

    def test_sweep_rejects_bad_chaos_spec(self):
        with pytest.raises(SystemExit, match="bad --chaos spec"):
            main(self.ARGS + ["--timeout", "5", "--chaos", "frobnicate=1"])

    def test_sweep_rejects_bad_timeout(self):
        with pytest.raises(SystemExit, match="timeout must be > 0"):
            main(self.ARGS + ["--timeout", "-1"])
