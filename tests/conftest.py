"""Shared test configuration: Hypothesis profiles.

Two profiles:

* ``default`` — Hypothesis's stock settings; what every local run and the
  per-push CI job use.
* ``nightly`` — many more examples with no deadline, for the scheduled
  deep fuzz of the property suites (``.github/workflows/nightly.yml``
  runs pytest with ``--hypothesis-profile=nightly``).

Select with ``pytest --hypothesis-profile=<name>``; the plugin shipped with
Hypothesis picks the flag up automatically.
"""

try:
    from hypothesis import settings
except ImportError:  # pragma: no cover - hypothesis is a dev dependency
    pass
else:
    settings.register_profile("default", settings())
    settings.register_profile("nightly", max_examples=600, deadline=None)
