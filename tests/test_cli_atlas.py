"""CLI ``repro atlas``: golden JSONL output and exit-code contract.

The atlas subcommand's ``--jsonl`` export is the reproducible form of
experiment E22 (the CI smoke step and docs/atlas.md point at it), so its
deterministic content is pinned against a golden file the same way the
arrivals/profile/sweep exports are.  The export contains no wall-time
fields by design, so the golden comparison is record-level equality with
no canonicalization step.
"""

import json
import pathlib

import pytest

from repro.cli import main

DATA = pathlib.Path(__file__).parent / "data"
GOLDEN = DATA / "golden_atlas_s1.jsonl"

ARGS = [
    "atlas",
    "--protocols", "fnw-general", "decay", "bk-backoff", "dmks-nonadaptive",
    "--n", "16",
    "--channels", "1", "2",
    "--cd", "strong", "noise-0.5", "none",
    "--trials", "2",
    "--seed", "1",
    "--max-rounds", "600",
    "--processes", "1",
]


def _read_jsonl(path):
    with open(path, "r", encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


def _run(tmp_path, extra=()):
    path = tmp_path / "atlas.jsonl"
    assert main(ARGS + list(extra) + ["--jsonl", str(path)]) == 0
    return _read_jsonl(path)


class TestAtlasGolden:
    def test_jsonl_matches_golden(self, tmp_path, capsys):
        records = _run(tmp_path)
        capsys.readouterr()
        assert records == _read_jsonl(GOLDEN)

    def test_jsonl_is_reproducible(self, tmp_path, capsys):
        first = _run(tmp_path)
        second = _run(tmp_path)
        capsys.readouterr()
        assert first == second

    def test_record_schema(self, tmp_path, capsys):
        records = _run(tmp_path)
        capsys.readouterr()
        meta = [r for r in records if r["type"] == "meta"]
        cells = [r for r in records if r["type"] == "cell"]
        frontier = [r for r in records if r["type"] == "frontier"]
        verdict = [r for r in records if r["type"] == "verdict"]
        assert len(meta) == 1
        assert meta[0]["master_seed"] == 1
        assert len(cells) == 24  # 4 protocols x 1 n x 2 C x 3 cd
        assert len(frontier) == 2  # one per (n, C)
        assert len(verdict) == 1
        for cell in cells:
            assert 0.0 <= cell["solve_rate"] <= 1.0
            assert cell["mean_cost"] >= cell["mean_rounds"] or cell["mean_cost"] == cell["mean_rounds"]
        # The CD-blind baselines post identical means at every CD quality.
        for blind in ("bk-backoff", "dmks-nonadaptive"):
            for C in (1, 2):
                rounds = {
                    c["mean_rounds"]
                    for c in cells
                    if c["protocol"] == blind and c["C"] == C
                }
                assert len(rounds) == 1, (blind, C)
        assert verdict[0]["blind_columns_constant"] is True


class TestAtlasCliContract:
    def test_table_and_frontier_printed(self, tmp_path, capsys):
        _run(tmp_path)
        out = capsys.readouterr().out
        assert "crossover atlas" in out
        assert "blind columns constant: True" in out
        assert "n=16 C=1:" in out

    def test_unknown_protocol_is_a_clean_exit(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["atlas", "--protocols", "bogus", "--trials", "1"])
        capsys.readouterr()
        assert "unknown protocol" in str(excinfo.value)

    @pytest.mark.parametrize(
        "args",
        [
            ["--trials", "0"],
            ["--max-rounds", "0"],
            ["--cd", "sideways"],
            ["--cd", "noise-lots"],
        ],
    )
    def test_invalid_arguments_exit_cleanly(self, args, capsys):
        with pytest.raises(SystemExit):
            main(["atlas"] + args)
        capsys.readouterr()

    def test_cost_weights_reach_the_export(self, tmp_path, capsys):
        records = _run(
            tmp_path, extra=["--energy-cost", "0.1", "--collision-cost", "0.5"]
        )
        capsys.readouterr()
        meta = next(r for r in records if r["type"] == "meta")
        assert meta["energy_cost"] == 0.1
        assert meta["collision_cost"] == 0.5
        # With nonzero weights, at least one solved cell prices above rounds.
        priced = [
            r
            for r in records
            if r["type"] == "cell" and r["mean_cost"] > r["mean_rounds"]
        ]
        assert priced
