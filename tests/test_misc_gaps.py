"""Gap-filling tests for small API corners not exercised elsewhere."""

import pytest

from repro import FNWGeneral, solve
from repro.analysis import summarize
from repro.analysis.sweep import CellResult
from repro.sim import (
    Activation,
    activate_all,
    run_execution,
    transmit,
)


class TestExecutionResultHelpers:
    def test_require_solved_passthrough(self):
        result = solve(
            FNWGeneral(),
            n=64,
            num_channels=8,
            activation=activate_all(64),
            seed=0,
        )
        assert result.require_solved() is result

    def test_require_solved_raises(self):
        def silent(ctx):
            def coroutine():
                return
                yield  # pragma: no cover

            return coroutine()

        result = run_execution(silent, n=4, num_channels=2, active_ids=[1])
        with pytest.raises(AssertionError):
            result.require_solved()


class TestSummaryHelpers:
    def test_ci95_tuple(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        low, high = summary.ci95
        assert low < summary.mean < high
        assert high - low == pytest.approx(2 * summary.ci95_half_width)


class TestCellResultHelpers:
    def test_metric_skips_missing_keys(self):
        cell = CellResult(params={})
        cell.trials = [{"rounds": 1.0}, {"rounds": 2.0, "extra": 9.0}]
        assert cell.metric("extra") == [9.0]
        assert cell.metric("rounds") == [1.0, 2.0]


class TestActivationEdgeCases:
    def test_single_node_activation(self):
        activation = Activation(active_ids=[3])
        result = solve(
            FNWGeneral(),
            n=16,
            num_channels=8,
            activation=activation,
            seed=0,
        )
        assert result.winner == 3

    def test_wake_rounds_default_empty(self):
        assert Activation(active_ids=[1, 2]).wake_rounds == {}


class TestEngineCornerCases:
    def test_message_payload_none_still_message(self):
        observations = []

        def factory(ctx):
            def coroutine():
                if ctx.node_id == 1:
                    yield transmit(2, None)
                else:
                    obs = yield __import__("repro.sim", fromlist=["listen"]).listen(2)
                    observations.append(obs)

            return coroutine()

        run_execution(factory, n=4, num_channels=4, active_ids=[1, 2])
        [obs] = observations
        assert obs.got_message
        assert obs.message is None

    def test_two_transmitters_same_payload_still_collision(self):
        outcomes = []

        def factory(ctx):
            def coroutine():
                obs = yield transmit(3, "same")
                outcomes.append(obs.feedback.value)

            return coroutine()

        run_execution(factory, n=4, num_channels=4, active_ids=[1, 2])
        assert outcomes == ["collision", "collision"]
