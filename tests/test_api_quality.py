"""API quality gates: documentation coverage and export hygiene.

Not tests of behaviour — tests that the library stays usable: every public
module, class, and function carries a docstring, and every name promised in
an ``__all__`` actually resolves.
"""

import importlib
import inspect
import pkgutil

import repro

PACKAGES = ["repro"]


def iter_modules():
    seen = set()
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        yield package
        for info in pkgutil.walk_packages(package.__path__, prefix=package_name + "."):
            if info.name in seen:
                continue
            seen.add(info.name)
            yield importlib.import_module(info.name)


def public_members(module):
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.ismodule(member):
            continue
        if getattr(member, "__module__", None) != module.__name__:
            continue  # re-export; documented at its definition site
        if inspect.isclass(member) or inspect.isfunction(member):
            yield name, member


class TestDocstrings:
    def test_every_module_documented(self):
        undocumented = [
            module.__name__ for module in iter_modules() if not module.__doc__
        ]
        assert not undocumented, f"modules without docstrings: {undocumented}"

    def test_every_public_class_and_function_documented(self):
        undocumented = []
        for module in iter_modules():
            for name, member in public_members(module):
                if not inspect.getdoc(member):
                    undocumented.append(f"{module.__name__}.{name}")
        assert not undocumented, f"undocumented public items: {undocumented}"

    def test_public_methods_documented(self):
        undocumented = []
        for module in iter_modules():
            for name, member in public_members(module):
                if not inspect.isclass(member):
                    continue
                for method_name, method in vars(member).items():
                    if method_name.startswith("_"):
                        continue
                    if not inspect.isfunction(method):
                        continue
                    if not inspect.getdoc(method):
                        undocumented.append(
                            f"{module.__name__}.{name}.{method_name}"
                        )
        assert not undocumented, f"undocumented methods: {undocumented}"


class TestExports:
    def test_all_entries_resolve(self):
        broken = []
        for module in iter_modules():
            for name in getattr(module, "__all__", []):
                if not hasattr(module, name):
                    broken.append(f"{module.__name__}.{name}")
        assert not broken, f"__all__ names that do not resolve: {broken}"

    def test_top_level_all_sorted_unique(self):
        names = repro.__all__
        assert len(names) == len(set(names))

    def test_version_present(self):
        assert repro.__version__
