"""CD-blindness differential suite for the no-CD baseline zoo.

The crossover atlas (E22) only makes sense if the no-CD baselines really
ignore collision detection: this suite proves it operationally, by running
:class:`~repro.baselines.BenderKuszmaulBackoff` and
:class:`~repro.baselines.DeMarcoNonAdaptive` under every
``CollisionDetection`` mode on identical seeds and asserting the executions
are *bitwise identical* — same result fields, same per-round traces, same
``RoundLimitExceeded`` details.  The ``ack`` variants are deliberately NOT
CD-blind (the acknowledgment transition branches on ``MESSAGE``); their
streaming behaviour is covered here instead.

Also pinned: coroutine/vec agreement for both protocols (including the
deterministic residue schedule, a new IR feature), and the combinatorial
guarantee behind the strongly-selective construction.
"""

import itertools

import pytest

from repro.baselines import (
    BenderKuszmaulBackoff,
    DeMarcoNonAdaptive,
    strongly_selective_slots,
    windowed_backoff_schedule,
)
from repro.protocols import solve
from repro.sim import activate_random
from repro.sim.cd_modes import CollisionDetection
from repro.sim.errors import RoundLimitExceeded

CD_MODES = (
    CollisionDetection.STRONG,
    CollisionDetection.RECEIVER_ONLY,
    CollisionDetection.NONE,
)

BLIND_PROTOCOLS = (BenderKuszmaulBackoff, DeMarcoNonAdaptive)

GRID = [
    # (n, num_channels, active_count)
    (8, 1, 2),
    (16, 2, 5),
    (32, 4, 8),
    (48, 8, 48),
]

SEEDS = (1, 7, 23)


def _run(factory, n, C, active, seed, cd, max_rounds=30000):
    return solve(
        factory(),
        n=n,
        num_channels=C,
        activation=activate_random(n, active, seed=seed),
        seed=seed,
        collision_detection=cd,
        max_rounds=max_rounds,
        record_trace=True,
    )


def _fingerprint(result):
    """Everything observable about an execution, hashable for comparison."""
    return (
        result.solved,
        result.solved_round,
        result.winner,
        result.rounds,
        result.all_terminated,
        result.crashed,
        tuple(
            (m.round_index, m.node_id, m.label, m.payload) for m in result.trace.marks
        ),
        tuple(
            (
                record.round_index,
                record.active_count,
                tuple(
                    (
                        chan,
                        record.channels[chan].transmitters,
                        record.channels[chan].receivers,
                        record.channels[chan].feedback,
                    )
                    for chan in sorted(record.channels)
                ),
            )
            for record in result.trace.rounds
        ),
    )


@pytest.mark.parametrize("factory", BLIND_PROTOCOLS, ids=lambda f: f.name)
@pytest.mark.parametrize("case", GRID, ids=lambda c: f"n{c[0]}C{c[1]}a{c[2]}")
def test_cd_blind_bitwise_across_modes(factory, case):
    """Executions are bitwise identical under STRONG / RECEIVER_ONLY / NONE."""
    n, C, active = case
    for seed in SEEDS:
        prints = {
            cd: _fingerprint(_run(factory, n, C, active, seed, cd)) for cd in CD_MODES
        }
        reference = prints[CollisionDetection.STRONG]
        assert reference[0], "grid cases are sized to solve within the budget"
        for cd, print_ in prints.items():
            assert print_ == reference, f"{factory.name} diverged under {cd}"


@pytest.mark.parametrize("factory", BLIND_PROTOCOLS, ids=lambda f: f.name)
def test_cd_blind_round_limit_identical(factory):
    """Even a truncated run fails identically in every CD mode."""
    details = []
    for cd in CD_MODES:
        with pytest.raises(RoundLimitExceeded) as excinfo:
            # 32 dense nodes in 2 rounds: both protocols collide for this
            # seed, so every mode must fail with the identical detail.
            solve(
                factory(),
                n=32,
                num_channels=1,
                activation=activate_random(32, 32, seed=0),
                seed=0,
                collision_detection=cd,
                max_rounds=2,
            )
        details.append(str(excinfo.value))
    assert len(set(details)) == 1


@pytest.mark.parametrize("factory", BLIND_PROTOCOLS, ids=lambda f: f.name)
def test_vec_matches_coroutine_bitwise(factory):
    """The vec backend reproduces the coroutine run exactly (exact draws)."""
    for (n, C, active), seed in itertools.product(GRID[:3], SEEDS[:2]):
        runs = {}
        for backend in ("coroutine", "vec"):
            result = solve(
                factory(),
                n=n,
                num_channels=C,
                activation=activate_random(n, active, seed=seed),
                seed=seed,
                max_rounds=30000,
                backend=backend,
            )
            runs[backend] = (
                result.solved,
                result.solved_round,
                result.winner,
                result.rounds,
                tuple(
                    (m.round_index, m.node_id, m.label, m.payload)
                    for m in result.trace.marks
                ),
            )
        assert runs["vec"] == runs["coroutine"]


def test_dmks_deterministic_guarantee_within_one_cycle():
    """Any active set solves within one full cycle of the residue schedule."""
    protocol = DeMarcoNonAdaptive()
    n = 16
    cycle = len(strongly_selective_slots(n))
    for seed in range(6):
        for active in (2, 5, 16):
            result = solve(
                protocol,
                n=n,
                num_channels=1,
                activation=activate_random(n, active, seed=seed),
                seed=seed,
                max_rounds=cycle + 1,
            )
            assert result.solved
            assert result.solved_round <= cycle


def test_dmks_is_seed_independent():
    """Deterministic and non-adaptive: the seed changes nothing but names."""
    protocol = DeMarcoNonAdaptive()
    outcomes = set()
    for seed in range(4):
        result = solve(
            protocol,
            n=16,
            num_channels=1,
            activation=activate_random(16, 7, seed=11),
            seed=seed,
            max_rounds=2000,
        )
        outcomes.add((result.solved, result.solved_round, result.winner))
    assert len(outcomes) == 1


def test_strongly_selective_family_isolates_every_subset():
    """Exhaustive check at n=8: every nonempty subset has an isolating slot."""
    n = 8
    slots = strongly_selective_slots(n)
    for size in range(1, n + 1):
        for subset in itertools.combinations(range(1, n + 1), size):
            assert any(
                sum(1 for x in subset if x % mod == res) == 1 for mod, res in slots
            ), f"no isolating slot for {subset}"


def test_windowed_backoff_schedule_shape():
    schedule = windowed_backoff_schedule(3, 2)
    assert schedule == (0.5, 0.5, 0.25, 0.25, 0.125, 0.125)
    with pytest.raises(ValueError):
        windowed_backoff_schedule(0, 2)
    with pytest.raises(ValueError):
        windowed_backoff_schedule(2, 0)


def test_ack_variants_are_streaming_native():
    """The ack forms stream unwrapped; the blind forms do not claim to."""
    from repro.sim.arrivals import PoissonArrivals, run_stream

    for factory in BLIND_PROTOCOLS:
        blind = factory()
        acked = factory(ack=True)
        assert not getattr(blind, "streaming", False)
        assert acked.streaming
        assert acked.name.endswith("-ack")
        stream = run_stream(
            acked,
            PoissonArrivals(0.05, initial=2),
            horizon=60,
            num_channels=1,
            seed=5,
        )
        assert stream.served, "the ack variant should serve packets"
        # Served packets retire through the protocol's own ACK transition,
        # so the marks come from the program, not the retry wrapper.
        assert stream.backend_used == "coroutine"


def test_ack_variants_stream_on_vec_backend():
    """Streaming-native + IR lowering => unwrapped vec streaming works."""
    pytest.importorskip("numpy")
    from repro.sim.arrivals import PoissonArrivals, run_stream

    for factory in BLIND_PROTOCOLS:
        runs = {}
        for backend in ("coroutine", "vec"):
            stream = run_stream(
                factory(ack=True),
                PoissonArrivals(0.05, initial=2),
                horizon=60,
                num_channels=1,
                seed=5,
                backend=backend,
            )
            runs[backend] = dict(stream.served)
        assert runs["vec"] == runs["coroutine"]
