"""Tests for the standalone Snir parallel search."""

import pytest
from hypothesis import given, strategies as st

from repro.parallel import parallel_steps_upper_bound, snir_search, subdivide


def boundary_predicate(answer):
    """Monotone predicate: True ("collision") below `answer`."""
    return lambda position: position < answer


class TestSubdivide:
    def test_covers_range(self):
        boundaries = subdivide(0, 10, 3)
        assert boundaries[0] == 0
        assert boundaries[-1] == 10
        assert boundaries == sorted(boundaries)

    def test_at_most_p_plus_one_subranges(self):
        for span in range(2, 50):
            for processors in range(1, 10):
                boundaries = subdivide(0, span, processors)
                assert len(boundaries) - 1 <= processors + 1

    def test_single_processor_is_binary(self):
        assert subdivide(0, 10, 1) == [0, 5, 10]

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            subdivide(5, 5, 2)
        with pytest.raises(ValueError):
            subdivide(0, 5, 0)


class TestSnirSearch:
    @pytest.mark.parametrize("processors", [1, 2, 4, 8])
    def test_exhaustive_small_ranges(self, processors):
        for hi in range(1, 30):
            for answer in range(1, hi + 1):
                result = snir_search(0, hi, processors, boundary_predicate(answer))
                assert result.answer == answer

    def test_steps_decrease_with_processors(self):
        span = 64
        steps = [
            snir_search(0, span, p, boundary_predicate(33)).parallel_steps
            for p in (1, 3, 7, 63)
        ]
        assert steps == sorted(steps, reverse=True)
        assert steps[-1] == 1  # 63 processors probe everything at once

    def test_steps_within_upper_bound(self):
        for span in (2, 10, 100, 1000):
            for processors in (1, 2, 5, 31):
                for answer in (1, span // 2 + 1, span):
                    result = snir_search(
                        0, span, processors, boundary_predicate(answer)
                    )
                    assert result.parallel_steps <= parallel_steps_upper_bound(
                        span, processors
                    )

    def test_binary_equivalence(self):
        # p = 1 must take ceil(log2(span)) steps for the worst answers.
        result = snir_search(0, 64, 1, boundary_predicate(64))
        assert result.parallel_steps == 6

    def test_non_monotone_predicate_detected(self):
        with pytest.raises(ValueError):
            snir_search(0, 8, 2, lambda position: True)  # never False

    def test_rejects_empty_range(self):
        with pytest.raises(ValueError):
            snir_search(5, 5, 2, boundary_predicate(5))

    @given(
        st.integers(min_value=2, max_value=500),
        st.integers(min_value=1, max_value=64),
        st.data(),
    )
    def test_property(self, span, processors, data):
        answer = data.draw(st.integers(min_value=1, max_value=span))
        result = snir_search(0, span, processors, boundary_predicate(answer))
        assert result.answer == answer
        assert result.probes >= result.parallel_steps


class TestUpperBound:
    def test_values(self):
        assert parallel_steps_upper_bound(1, 4) == 0
        assert parallel_steps_upper_bound(2, 1) == 1
        assert parallel_steps_upper_bound(64, 1) == 6
        # 63 processors cover a 64-range in one step.
        assert parallel_steps_upper_bound(64, 63) == 1

    def test_rejects_bad_span(self):
        with pytest.raises(ValueError):
            parallel_steps_upper_bound(0, 2)
