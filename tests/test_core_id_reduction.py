"""Tests for IDReduction (Section 5.2, Theorem 6)."""

import pytest

from repro import IDReduction, solve
from repro.core import GeneralParams
from repro.sim import activate_random


def run_id_reduction(n, num_channels, active_count, seed, **kwargs):
    return solve(
        IDReduction(**kwargs),
        n=n,
        num_channels=num_channels,
        activation=activate_random(n, active_count, seed=seed),
        seed=seed,
        stop_on_solve=False,
    )


def renamed_ids(result):
    return [
        m.payload["id"] for m in result.trace.marks_with_label("id_reduction:renamed")
    ]


class TestExitState:
    @pytest.mark.parametrize("num_channels", [8, 16, 64, 256])
    def test_renamed_ids_unique_and_in_range(self, num_channels):
        half = num_channels // 2
        for seed in range(15):
            result = run_id_reduction(1 << 12, num_channels, 12, seed)
            ids = renamed_ids(result)
            assert len(ids) >= 1
            assert len(set(ids)) == len(ids)
            assert all(1 <= i <= half for i in ids)

    def test_at_most_half_c_survivors(self):
        # Theorem 6: at most C/2 active nodes at exit.
        for seed in range(15):
            result = run_id_reduction(1 << 10, 16, 10, seed)
            assert len(renamed_ids(result)) <= 8

    def test_everyone_terminates(self):
        for seed in range(10):
            result = run_id_reduction(1 << 10, 64, 10, seed)
            assert result.all_terminated

    def test_single_active_renames_immediately(self):
        result = run_id_reduction(1 << 10, 64, 1, 0)
        ids = renamed_ids(result)
        assert len(ids) == 1
        # Renaming + confirmation: exactly 2 rounds.
        assert result.rounds == 2

    def test_all_adopters_return_in_confirmation_round(self):
        for seed in range(10):
            result = run_id_reduction(1 << 12, 128, 14, seed)
            marks = result.trace.marks_with_label("id_reduction:renamed")
            rounds = {m.round_index for m in marks}
            assert len(rounds) == 1  # synchronized exit

    def test_crowded_start_still_terminates(self):
        # |A| far above C/6 forces reduction rounds before renaming works.
        for seed in range(5):
            result = run_id_reduction(1 << 12, 16, 60, seed)
            ids = renamed_ids(result)
            assert 1 <= len(ids) <= 8


class TestKnockConstant:
    def test_kappa_insensitive_correctness(self):
        for kappa in (2.0, 16.0, 144.0):
            result = run_id_reduction(
                1 << 10, 64, 12, 7, params=GeneralParams(kappa=kappa)
            )
            ids = renamed_ids(result)
            assert len(set(ids)) == len(ids) >= 1


class TestValidation:
    def test_requires_enough_channels(self):
        with pytest.raises(ValueError):
            run_id_reduction(1 << 10, 2, 5, 0)


class TestRoundBudget:
    def test_terminates_fast_when_sparse(self):
        # With |A| << C/6 renaming succeeds almost immediately; generous cap.
        for seed in range(10):
            result = run_id_reduction(1 << 16, 256, 16, seed)
            assert result.rounds <= 30

    def test_rounds_scale_reasonably_when_crowded(self):
        # Crowded instances need reduction cycles but remain far below the
        # engine budget: a loose sanity ceiling.
        for seed in range(5):
            result = run_id_reduction(1 << 16, 16, 64, seed)
            assert result.rounds <= 200
