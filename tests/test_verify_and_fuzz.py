"""Tests for the exhaustive verifier and the adversarial fuzzer."""

import pytest

from repro import BinarySearchCD, FNWGeneral
from repro.fuzz import fuzz_activations
from repro.verify import (
    verify_all,
    verify_leaf_election_subsets,
    verify_splitcheck_pairs,
)


class TestExhaustiveVerification:
    def test_splitcheck_all_pairs_small(self):
        for channels in (2, 4, 8, 16):
            report = verify_splitcheck_pairs(channels)
            assert report.ok, report.failures
            assert report.cases_checked == channels * (channels - 1)

    def test_leaf_election_all_subsets_c8(self):
        report = verify_leaf_election_subsets(8)
        assert report.ok, report.failures
        assert report.cases_checked == (1 << 4) - 1  # 4 leaves

    def test_leaf_election_all_subsets_c16(self):
        report = verify_leaf_election_subsets(16)
        assert report.ok, report.failures
        assert report.cases_checked == (1 << 8) - 1  # 8 leaves

    def test_huge_subset_space_rejected(self):
        with pytest.raises(ValueError):
            verify_leaf_election_subsets(64)

    def test_verify_all_reports(self):
        reports = verify_all(
            splitcheck_channels=(4, 8), election_channels=(8,)
        )
        assert len(reports) == 3
        assert all(report.ok for report in reports)
        assert all("cases" in report.summary() for report in reports)


class TestFuzzer:
    def test_finds_instances_and_is_deterministic(self):
        first = fuzz_activations(
            FNWGeneral(),
            n=256,
            num_channels=16,
            active_count=10,
            generations=3,
            population=4,
            eval_seeds=2,
            master_seed=1,
        )
        second = fuzz_activations(
            FNWGeneral(),
            n=256,
            num_channels=16,
            active_count=10,
            generations=3,
            population=4,
            eval_seeds=2,
            master_seed=1,
        )
        assert first.worst_activation.active_ids == second.worst_activation.active_ids
        assert first.worst_mean_rounds == second.worst_mean_rounds
        assert first.evaluations == 4 * (3 + 1)

    def test_worst_at_least_baseline(self):
        result = fuzz_activations(
            FNWGeneral(),
            n=256,
            num_channels=16,
            active_count=10,
            generations=3,
            population=4,
            eval_seeds=2,
            master_seed=2,
        )
        assert result.worst_mean_rounds >= result.baseline_mean_rounds
        assert result.adversarial_gain >= 1.0

    def test_deterministic_protocol_immune(self):
        # BinarySearchCD's rounds depend only on the smallest active id's
        # position; the adversary can move it, but the bound lg n + 1 caps
        # the gain.
        result = fuzz_activations(
            BinarySearchCD(),
            n=256,
            num_channels=1,
            active_count=8,
            generations=4,
            population=4,
            eval_seeds=1,
            master_seed=3,
        )
        assert result.worst_mean_rounds <= 9  # ceil(lg 256) + 1

    def test_validation(self):
        with pytest.raises(ValueError):
            fuzz_activations(
                FNWGeneral(), n=16, num_channels=4, active_count=0
            )
