"""Tests for the classical baseline protocols."""

import pytest

from repro import BinarySearchCD, DaumMultiChannel, Decay, SlottedAloha, solve
from repro.baselines import decay_sweep_length
from repro.mathutil import ceil_log2
from repro.sim import Activation, activate_all, activate_random


class TestBinarySearchCD:
    def test_solves_deterministically(self):
        for seed in range(3):
            result = solve(
                BinarySearchCD(),
                n=1 << 10,
                num_channels=1,
                activation=activate_all(1 << 10),
                seed=seed,
            )
            assert result.solved

    def test_rounds_at_most_log_n_plus_one(self):
        for n_exp in (4, 8, 12):
            n = 1 << n_exp
            result = solve(
                BinarySearchCD(),
                n=n,
                num_channels=1,
                activation=activate_all(n),
                seed=0,
            )
            assert result.rounds <= ceil_log2(n) + 1

    def test_winner_is_smallest_active_id(self):
        activation = Activation(active_ids=[37, 100, 512, 513])
        result = solve(
            BinarySearchCD(),
            n=1 << 10,
            num_channels=1,
            activation=activation,
            seed=0,
        )
        assert result.winner == 37

    def test_single_active_solves_in_one_round(self):
        result = solve(
            BinarySearchCD(),
            n=256,
            num_channels=1,
            activation=Activation(active_ids=[99]),
            seed=0,
        )
        assert result.solved_round == 1
        assert result.winner == 99

    def test_identical_rounds_regardless_of_seed(self):
        activation = Activation(active_ids=[3, 900])
        rounds = {
            solve(
                BinarySearchCD(),
                n=1 << 10,
                num_channels=1,
                activation=activation,
                seed=seed,
            ).rounds
            for seed in range(5)
        }
        assert len(rounds) == 1  # fully deterministic

    def test_adjacent_pair(self):
        activation = Activation(active_ids=[511, 512])
        result = solve(
            BinarySearchCD(), n=1 << 10, num_channels=1, activation=activation
        )
        assert result.winner == 511


class TestDecay:
    def test_sweep_length(self):
        assert decay_sweep_length(1024) == 11
        assert decay_sweep_length(2) == 2

    def test_solves_dense(self):
        for seed in range(5):
            result = solve(
                Decay(),
                n=1 << 8,
                num_channels=1,
                activation=activate_all(1 << 8),
                seed=seed,
            )
            assert result.solved

    def test_solves_sparse(self):
        for seed in range(5):
            result = solve(
                Decay(),
                n=1 << 10,
                num_channels=1,
                activation=activate_random(1 << 10, 3, seed=seed),
                seed=seed,
            )
            assert result.solved

    def test_no_cd_discipline(self):
        # Structural check: the Decay source must never consult the
        # silence/collision distinction or a transmitter's own feedback.
        import inspect

        from repro.baselines import decay

        source = inspect.getsource(decay.Decay.run)
        assert ".collision" not in source
        assert ".silence" not in source
        assert ".alone" not in source


class TestDaumMultiChannel:
    @pytest.mark.parametrize("num_channels", [1, 4, 32, 256])
    def test_solves(self, num_channels):
        for seed in range(4):
            result = solve(
                DaumMultiChannel(),
                n=1 << 8,
                num_channels=num_channels,
                activation=activate_all(1 << 8),
                seed=seed,
            )
            assert result.solved

    def test_no_cd_discipline(self):
        import inspect

        from repro.baselines import daum_multichannel

        source = inspect.getsource(daum_multichannel.DaumMultiChannel.run)
        assert ".collision" not in source
        assert ".silence" not in source
        assert ".alone" not in source

    def test_channels_speed_up_dense_instances(self):
        # Statistical: mean over seeds with C=64 should beat C=1 on dense
        # instances (the whole point of Daum et al.).
        def mean_rounds(num_channels):
            total = 0
            for seed in range(25):
                result = solve(
                    DaumMultiChannel(),
                    n=1 << 9,
                    num_channels=num_channels,
                    activation=activate_all(1 << 9),
                    seed=seed,
                )
                total += result.rounds
            return total / 25

        assert mean_rounds(64) < mean_rounds(1)


class TestSlottedAloha:
    def test_solves_dense(self):
        for seed in range(5):
            result = solve(
                SlottedAloha(),
                n=1 << 8,
                num_channels=1,
                activation=activate_all(1 << 8),
                seed=seed,
            )
            assert result.solved

    def test_custom_probability(self):
        result = solve(
            SlottedAloha(probability=0.5),
            n=1 << 8,
            num_channels=1,
            activation=activate_random(1 << 8, 2, seed=1),
            seed=1,
        )
        assert result.solved

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            SlottedAloha(probability=0.0)
        with pytest.raises(ValueError):
            SlottedAloha(probability=1.5)

    def test_sparse_is_slow(self):
        # The classical failure mode: p = 1/n with few actives.
        def mean_rounds(active_count):
            total = 0
            for seed in range(15):
                result = solve(
                    SlottedAloha(),
                    n=1 << 9,
                    num_channels=1,
                    activation=activate_random(1 << 9, active_count, seed=seed),
                    seed=seed,
                )
                total += result.rounds
            return total / 15

        assert mean_rounds(2) > 4 * mean_rounds(1 << 8)
