"""CLI ``repro arrivals``: golden JSONL output and exit-code contract.

The arrivals subcommand's ``--jsonl`` export is a public format (the nightly
soak and the experiment notebooks read it), so its deterministic content is
pinned against a golden file the same way the profile/sweep exports are in
``test_cli_backend.py``.  The export contains no wall-time fields by design,
so the golden comparison is byte-level record equality with no
canonicalization step.
"""

import json
import pathlib

import pytest

from repro.cli import main

DATA = pathlib.Path(__file__).parent / "data"
GOLDEN = DATA / "golden_arrivals_sweep_s1.jsonl"

ARGS = [
    "arrivals",
    "--protocols", "sawtooth-backoff", "decay",
    "--rates", "0.05", "0.3",
    "--horizon", "120",
    "--trials", "2",
    "--seed", "1",
    "--processes", "1",
]


def _read_jsonl(path):
    with open(path, "r", encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


def _run(tmp_path, extra=()):
    path = tmp_path / "arrivals.jsonl"
    assert main(ARGS + list(extra) + ["--jsonl", str(path)]) == 0
    return _read_jsonl(path)


class TestArrivalsGolden:
    def test_jsonl_matches_golden(self, tmp_path, capsys):
        records = _run(tmp_path)
        capsys.readouterr()
        assert records == _read_jsonl(GOLDEN)

    def test_jsonl_is_reproducible(self, tmp_path, capsys):
        first = _run(tmp_path)
        second = _run(tmp_path)
        capsys.readouterr()
        assert first == second

    def test_record_schema(self, tmp_path, capsys):
        records = _run(tmp_path)
        capsys.readouterr()
        meta = [r for r in records if r["type"] == "meta"]
        cells = [r for r in records if r["type"] == "cell"]
        stability = [r for r in records if r["type"] == "stability"]
        assert len(meta) == 1
        assert meta[0]["master_seed"] == 1
        assert len(cells) == 4  # 2 protocols x 2 rates
        assert len(stability) == 2  # one per protocol
        for cell in cells:
            assert len(cell["trials"]) == 2
            for trial in cell["trials"]:
                assert trial["served"] + trial["unserved"] == trial["injected"]
        for record in stability:
            assert record["threshold"] == 0.05
            assert len(record["rates"]) == len(record["leftover_fractions"]) == 2


class TestArrivalsCliContract:
    def test_table_and_boundary_printed(self, tmp_path, capsys):
        _run(tmp_path)
        out = capsys.readouterr().out
        assert "steady-state metrics" in out
        assert "throughput" in out
        assert "sawtooth-backoff:" in out
        assert "decay:" in out

    def test_unknown_protocol_is_a_clean_exit(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["arrivals", "--protocols", "bogus", "--trials", "1"])
        capsys.readouterr()
        assert "unknown protocol" in str(excinfo.value)

    @pytest.mark.parametrize(
        "args",
        [
            ["--trials", "0"],
            ["--horizon", "0"],
            ["--rates", "-0.1"],
        ],
    )
    def test_invalid_arguments_exit_cleanly(self, args, capsys):
        with pytest.raises(SystemExit):
            main(["arrivals"] + args)
        capsys.readouterr()

    def test_batch_process_runs(self, tmp_path, capsys):
        records = _run(tmp_path, extra=["--process", "batch", "--period", "20"])
        capsys.readouterr()
        assert all(
            r["params"]["process"] == "batch"
            for r in records
            if r["type"] == "cell"
        )

    def test_fault_model_forwarded_to_cells(self, tmp_path, capsys):
        records = _run(
            tmp_path, extra=["--model", "jamming", "--intensity", "0.1"]
        )
        capsys.readouterr()
        for record in records:
            if record["type"] == "cell":
                assert record["params"]["model"] == "jamming"
                assert record["params"]["intensity"] == 0.1
