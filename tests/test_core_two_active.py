"""Tests for the TwoActive algorithm (Section 4, Theorem 1)."""

import pytest

from repro import TwoActive, solve
from repro.analysis.predictors import two_active_bound
from repro.sim import Activation, activate_pair
from repro.tree import ChannelTree


def run_pair(n, num_channels, pair, seed=0, **kwargs):
    return solve(
        TwoActive(),
        n=n,
        num_channels=num_channels,
        activation=Activation(active_ids=list(pair)),
        seed=seed,
        **kwargs,
    )


class TestSolves:
    @pytest.mark.parametrize("num_channels", [2, 4, 16, 256])
    def test_solves_across_channel_counts(self, num_channels):
        for seed in range(10):
            result = solve(
                TwoActive(),
                n=1 << 10,
                num_channels=num_channels,
                activation=activate_pair(1 << 10, seed=seed),
                seed=seed,
            )
            assert result.solved
            assert result.winner is not None

    def test_single_channel_fallback(self):
        for seed in range(10):
            result = run_pair(256, 1, (10, 20), seed=seed)
            assert result.solved

    def test_more_channels_than_nodes(self):
        # Footnote 4: C > n uses only n channels; still solves.
        for seed in range(5):
            result = run_pair(16, 1 << 12, (3, 9), seed=seed)
            assert result.solved

    def test_adjacent_pair_deep_divergence(self):
        # Ids 7,8 under C = n = 1024: adjacent leaves force the deepest
        # possible SplitCheck answer once renamed adjacently; regardless,
        # the algorithm must solve.
        for seed in range(5):
            result = run_pair(1024, 1024, (7, 8), seed=seed)
            assert result.solved

    def test_winner_is_one_of_the_pair(self):
        for seed in range(10):
            result = run_pair(512, 64, (100, 400), seed=seed)
            assert result.winner in (100, 400)


class TestStructure:
    def test_renamed_ids_distinct_and_in_range(self):
        result = run_pair(1 << 12, 64, (5, 4000), seed=2, stop_on_solve=False)
        marks = result.trace.marks_with_label("two_active:renamed")
        assert len(marks) == 2
        ids = [m.payload["id"] for m in marks]
        assert ids[0] != ids[1]
        assert all(1 <= i <= 64 for i in ids)

    def test_both_nodes_rename_in_same_round(self):
        result = run_pair(1 << 12, 64, (5, 4000), seed=2, stop_on_solve=False)
        marks = result.trace.marks_with_label("two_active:renamed")
        assert marks[0].round_index == marks[1].round_index

    def test_winner_is_left_child_at_divergence(self):
        for seed in range(8):
            result = run_pair(1 << 10, 32, (17, 900), seed=seed, stop_on_solve=False)
            renamed = {
                m.node_id: m.payload["id"]
                for m in result.trace.marks_with_label("two_active:renamed")
            }
            winner_marks = result.trace.marks_with_label("two_active:winner")
            assert len(winner_marks) == 1
            tree = ChannelTree(32)
            id_a, id_b = renamed[17], renamed[900]
            level = tree.divergence_level(id_a, id_b)
            winner_id = winner_marks[0].payload
            assert tree.is_left_child(tree.ancestor(winner_id, level))

    def test_completion_within_worst_case_budget(self):
        # Deterministic Step 2 + geometric Step 1: a 6x bound on the
        # theorem's formula holds with enormous margin at these scales.
        for seed in range(20):
            result = run_pair(1 << 14, 64, (1, 2), seed=seed, stop_on_solve=False)
            assert result.rounds <= 6 * two_active_bound(1 << 14, 64) + 6


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        first = run_pair(1 << 10, 64, (3, 700), seed=11)
        second = run_pair(1 << 10, 64, (3, 700), seed=11)
        assert (first.solved_round, first.winner) == (
            second.solved_round,
            second.winner,
        )

    def test_different_seeds_vary(self):
        outcomes = {
            run_pair(1 << 10, 64, (3, 700), seed=s).solved_round for s in range(20)
        }
        assert len(outcomes) > 1
