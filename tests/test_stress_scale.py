"""Scale smoke tests: single large instances of every major component.

Not statistical — one seeded execution each, proving the implementation
holds up at the largest sizes the test suite touches (n = 2^20, C = 2^12).

The vectorized tier at the bottom (``pytest.mark.slow``) runs the mega
population the coroutine engine cannot touch — n = 10^6 *simultaneously
active* nodes — and pins the memory contract that makes it possible.
"""

import tracemalloc

import pytest

from repro import FNWGeneral, TwoActive, solve
from repro.sim import Activation, activate_pair, activate_random


class TestScaleSmoke:
    def test_two_active_n_2_20_c_4096(self):
        result = solve(
            TwoActive(),
            n=1 << 20,
            num_channels=1 << 12,
            activation=activate_pair(1 << 20, seed=0),
            seed=0,
        )
        assert result.solved
        assert result.rounds <= 12

    def test_general_sparse_n_2_20(self):
        result = solve(
            FNWGeneral(),
            n=1 << 20,
            num_channels=256,
            activation=activate_random(1 << 20, 5000, seed=0),
            seed=0,
        )
        assert result.solved

    def test_general_two_actives_in_huge_space(self):
        # |A| = 2 inside n = 2^20: the hardest sparse case for Reduce (its
        # early probabilities are far too small to fire), exercising the
        # full pipeline depth.
        result = solve(
            FNWGeneral(),
            n=1 << 20,
            num_channels=64,
            activation=Activation(active_ids=[1, 1 << 20]),
            seed=0,
        )
        assert result.solved
        assert result.winner in (1, 1 << 20)

    def test_general_dense_mid_scale(self):
        result = solve(
            FNWGeneral(),
            n=1 << 15,
            num_channels=128,
            activation=activate_random(1 << 15, 1 << 15, seed=1),
            seed=1,
        )
        assert result.solved

    @pytest.mark.parametrize("channels", [1 << 10, 1 << 12])
    def test_many_channels_two_nodes(self, channels):
        result = solve(
            TwoActive(),
            n=1 << 16,
            num_channels=channels,
            activation=activate_pair(1 << 16, seed=3),
            seed=3,
        )
        assert result.solved


@pytest.mark.slow
class TestVecMegaScale:
    """n = 10^6 active nodes on the vectorized backend, with bounded memory.

    The coroutine engine holds one live generator frame per node, so a
    dense 10^6-node population is out of reach; the vec backend stores
    a handful of int64/float64 columns instead.  The tracemalloc bound
    (256 MB) pins that column representation: ~8 columns x 8 bytes x 10^6
    nodes plus transient masks is well under 100 MB, so a regression to
    per-node Python objects (~1 GB) fails loudly.
    """

    N = 1_000_000
    MEMORY_BUDGET = 256 * 1024 * 1024

    @pytest.fixture(autouse=True)
    def _needs_numpy(self):
        pytest.importorskip("numpy")

    def test_decay_mega_population_solves_within_memory_budget(self):
        from repro.baselines import Decay
        from repro.sim import vec

        tracemalloc.start()
        try:
            result = vec.run_protocol(
                Decay(),
                n=self.N,
                num_channels=1,
                seed=7,
            )
            _current, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert result.solved
        assert 1 <= result.winner <= self.N
        assert peak < self.MEMORY_BUDGET, f"peak {peak / 2**20:.1f} MB"

    def test_saturated_mega_population_exhausts_budget_within_memory(self):
        from repro.baselines import SlottedAloha
        from repro.sim import RoundLimitExceeded, vec

        tracemalloc.start()
        try:
            with pytest.raises(RoundLimitExceeded, match="still running"):
                vec.run_protocol(
                    SlottedAloha(probability=0.3),
                    n=self.N,
                    num_channels=1,
                    seed=17,
                    stop_on_solve=False,
                    max_rounds=40,
                )
            _current, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert peak < self.MEMORY_BUDGET, f"peak {peak / 2**20:.1f} MB"
