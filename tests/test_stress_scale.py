"""Scale smoke tests: single large instances of every major component.

Not statistical — one seeded execution each, proving the implementation
holds up at the largest sizes the test suite touches (n = 2^20, C = 2^12).
"""

import pytest

from repro import FNWGeneral, TwoActive, solve
from repro.sim import Activation, activate_pair, activate_random


class TestScaleSmoke:
    def test_two_active_n_2_20_c_4096(self):
        result = solve(
            TwoActive(),
            n=1 << 20,
            num_channels=1 << 12,
            activation=activate_pair(1 << 20, seed=0),
            seed=0,
        )
        assert result.solved
        assert result.rounds <= 12

    def test_general_sparse_n_2_20(self):
        result = solve(
            FNWGeneral(),
            n=1 << 20,
            num_channels=256,
            activation=activate_random(1 << 20, 5000, seed=0),
            seed=0,
        )
        assert result.solved

    def test_general_two_actives_in_huge_space(self):
        # |A| = 2 inside n = 2^20: the hardest sparse case for Reduce (its
        # early probabilities are far too small to fire), exercising the
        # full pipeline depth.
        result = solve(
            FNWGeneral(),
            n=1 << 20,
            num_channels=64,
            activation=Activation(active_ids=[1, 1 << 20]),
            seed=0,
        )
        assert result.solved
        assert result.winner in (1, 1 << 20)

    def test_general_dense_mid_scale(self):
        result = solve(
            FNWGeneral(),
            n=1 << 15,
            num_channels=128,
            activation=activate_random(1 << 15, 1 << 15, seed=1),
            seed=1,
        )
        assert result.solved

    @pytest.mark.parametrize("channels", [1 << 10, 1 << 12])
    def test_many_channels_two_nodes(self, channels):
        result = solve(
            TwoActive(),
            n=1 << 16,
            num_channels=channels,
            activation=activate_pair(1 << 16, seed=3),
            seed=3,
        )
        assert result.solved
