"""Tests for the scipy-backed significance tooling."""

import random

import pytest

pytest.importorskip("scipy")

from repro.analysis.advanced_stats import (
    chi_square_geometric,
    mann_whitney_faster,
    t_confidence_interval,
)


def geometric_sample(p, count, seed):
    rng = random.Random(seed)
    sample = []
    for _ in range(count):
        attempts = 1
        while rng.random() >= p:
            attempts += 1
        sample.append(attempts)
    return sample


class TestTConfidenceInterval:
    def test_contains_mean(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        low, high = t_confidence_interval(values)
        assert low < 3.0 < high

    def test_wider_than_normal_at_small_n(self):
        from repro.analysis import summarize

        values = [1.0, 2.0, 3.0]
        low, high = t_confidence_interval(values)
        summary = summarize(values)
        assert (high - low) / 2 > summary.ci95_half_width

    def test_validation(self):
        with pytest.raises(ValueError):
            t_confidence_interval([1.0])
        with pytest.raises(ValueError):
            t_confidence_interval([1.0, 2.0], confidence=1.5)


class TestChiSquareGeometric:
    def test_accepts_true_model(self):
        sample = geometric_sample(0.25, 3000, seed=1)
        result = chi_square_geometric(sample, 0.25)
        assert result.consistent
        assert result.bins >= 2

    def test_rejects_wrong_rate(self):
        sample = geometric_sample(0.25, 3000, seed=2)
        result = chi_square_geometric(sample, 0.6)
        assert not result.consistent

    def test_rejects_non_geometric_data(self):
        result = chi_square_geometric([3] * 2000, 0.5)
        assert not result.consistent

    def test_validation(self):
        with pytest.raises(ValueError):
            chi_square_geometric([], 0.5)
        with pytest.raises(ValueError):
            chi_square_geometric([1, 2], 0.0)
        with pytest.raises(ValueError):
            chi_square_geometric([1, 2, 3], 0.5)  # too small to bin


class TestMannWhitney:
    def test_detects_clear_winner(self):
        fast = [3.0 + (i % 3) for i in range(100)]
        slow = [10.0 + (i % 5) for i in range(100)]
        result = mann_whitney_faster(fast, slow)
        assert result.a_significantly_faster
        assert result.median_a < result.median_b

    def test_no_false_positive_on_identical(self):
        same = [5.0 + (i % 4) for i in range(100)]
        result = mann_whitney_faster(same, list(same))
        assert not result.a_significantly_faster

    def test_real_protocols(self):
        # The classical adaptive CD algorithm crushes fixed-probability
        # ALOHA on sparse activations — the canonical comparative claim.
        from repro import BinarySearchCD, SlottedAloha, solve
        from repro.sim import activate_random

        def rounds(protocol_cls):
            values = []
            for seed in range(30):
                result = solve(
                    protocol_cls(),
                    n=256,
                    num_channels=1,
                    activation=activate_random(256, 3, seed=seed),
                    seed=seed,
                )
                values.append(float(result.rounds))
            return values

        comparison = mann_whitney_faster(rounds(BinarySearchCD), rounds(SlottedAloha))
        assert comparison.a_significantly_faster

    def test_validation(self):
        with pytest.raises(ValueError):
            mann_whitney_faster([], [1.0])
