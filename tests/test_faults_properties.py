"""Property tests: fault-model serialization round-trips exactly.

``to_dict`` -> JSON -> ``fault_from_dict`` must be lossless for every
fault model the package can express — including arbitrarily nested
:class:`~repro.faults.FaultPlan` compositions — because saved plans are
how adversarial-search results and sweep configurations are replayed.
The canonical form *is* ``to_dict()``: two models are the same iff their
plain-data forms are equal, so the property under test is

    fault_from_dict(json.loads(json.dumps(m.to_dict()))).to_dict()
        == m.to_dict()

with Hypothesis generating the parameter space (explicit and seeded
variants, boundary fractions, empty and populated schedules, nested
plans).
"""

import json

from hypothesis import given, settings, strategies as st

from repro.faults import (
    CDNoise,
    Churn,
    FaultModel,
    FaultPlan,
    Jamming,
    ScheduledJamming,
    fault_from_dict,
)

_seeds = st.none() | st.integers(min_value=0, max_value=2**63 - 1)
_fractions = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)

_jamming = st.builds(
    Jamming,
    st.integers(min_value=0, max_value=500),
    channels_per_round=st.integers(min_value=1, max_value=16),
    target=st.sampled_from(["primary", "random"]),
    start_round=st.integers(min_value=1, max_value=64),
    seed=_seeds,
)

_scheduled = st.builds(
    ScheduledJamming,
    st.dictionaries(
        st.integers(min_value=1, max_value=96),
        st.sets(st.integers(min_value=1, max_value=16), min_size=1, max_size=4),
        max_size=8,
    ),
)

_cd_noise = st.builds(CDNoise, _fractions, seed=_seeds)

_windows = st.tuples(
    st.integers(min_value=1, max_value=32), st.integers(min_value=0, max_value=32)
).map(lambda pair: (pair[0], pair[0] + pair[1]))

_churn = st.builds(
    Churn,
    crash_rounds=st.dictionaries(
        st.integers(min_value=1, max_value=128),
        st.integers(min_value=1, max_value=200),
        max_size=6,
    ),
    wake_delays=st.dictionaries(
        st.integers(min_value=1, max_value=128),
        st.integers(min_value=0, max_value=24),
        max_size=6,
    ),
    crash_fraction=_fractions,
    crash_window=_windows,
    late_fraction=_fractions,
    max_extra_delay=st.integers(min_value=0, max_value=16),
    seed=_seeds,
)

_leaf = st.one_of(_jamming, _scheduled, _cd_noise, _churn, st.builds(FaultModel))

#: Leaves plus plans-of-plans up to a few levels deep.
_any_model = st.recursive(
    _leaf,
    lambda children: st.lists(children, max_size=3).map(FaultPlan),
    max_leaves=8,
)


def _round_trip(model: FaultModel) -> FaultModel:
    payload = json.loads(json.dumps(model.to_dict()))
    return fault_from_dict(payload)


@given(model=_any_model)
@settings(max_examples=200)
def test_round_trip_is_lossless(model):
    rebuilt = _round_trip(model)
    assert type(rebuilt) is type(model)
    assert rebuilt.to_dict() == model.to_dict()
    # And the round trip is idempotent: a second pass changes nothing.
    assert _round_trip(rebuilt).to_dict() == model.to_dict()


@given(model=_any_model)
@settings(max_examples=100)
def test_serialized_form_is_plain_json(model):
    # No exotic types leak into the payload: json round-trip is exact.
    payload = model.to_dict()
    assert json.loads(json.dumps(payload)) == payload
    assert payload["kind"] == type(model).kind


@given(models=st.lists(_leaf, max_size=4))
@settings(max_examples=100)
def test_plan_round_trip_preserves_order_and_kinds(models):
    plan = FaultPlan(models)
    rebuilt = _round_trip(plan)
    assert isinstance(rebuilt, FaultPlan)
    assert [type(m) for m in rebuilt.models] == [type(m) for m in plan.models]
    assert [m.to_dict() for m in rebuilt.models] == [m.to_dict() for m in plan.models]
