"""Unit tests for the fault models (``repro.faults``).

Covers parameter validation, the jamming budget arithmetic, determinism of
every seeded draw, composition semantics of ``FaultPlan``, the standard
``plan_for`` intensity mapping, serialization round-trips, and the engine's
fault semantics (jam blocks solve; crash removes nodes; noise is
observational only).  The ``faults=None`` identity has its own differential
suite in ``test_faults_differential.py``.
"""

import pytest

from repro import Decay, FNWGeneral, TwoActive, activate_pair, activate_random, solve
from repro.faults import (
    CDNoise,
    Churn,
    FaultModel,
    FaultPlan,
    Jamming,
    ScheduledJamming,
    fault_from_dict,
    plan_for,
)
from repro.obs import EventLog
from repro.sim import (
    ConfigurationError,
    Feedback,
    RoundLimitExceeded,
    fault_plan_from_dict,
    fault_plan_to_dict,
    listen,
    load_fault_plan,
    run_execution,
    save_fault_plan,
)


def bound(model, *, n=64, num_channels=8, seed=7, max_rounds=512):
    """Bind a model to a small run, the way the engine does."""
    model.bind(n=n, num_channels=num_channels, seed=seed, max_rounds=max_rounds)
    return model


class TestValidation:
    def test_jamming_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            Jamming(-1)
        with pytest.raises(ConfigurationError):
            Jamming(4, channels_per_round=0)
        with pytest.raises(ConfigurationError):
            Jamming(4, target="everything")
        with pytest.raises(ConfigurationError):
            Jamming(4, start_round=0)

    def test_scheduled_jamming_rejects_bad_schedule(self):
        with pytest.raises(ConfigurationError):
            ScheduledJamming({0: [1]})
        with pytest.raises(ConfigurationError):
            ScheduledJamming({3: [0]})

    def test_cd_noise_rejects_bad_probability(self):
        with pytest.raises(ConfigurationError):
            CDNoise(-0.1)
        with pytest.raises(ConfigurationError):
            CDNoise(1.5)

    def test_churn_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            Churn(crash_fraction=2.0)
        with pytest.raises(ConfigurationError):
            Churn(late_fraction=-0.5)
        with pytest.raises(ConfigurationError):
            Churn(crash_window=(5, 2))
        with pytest.raises(ConfigurationError):
            Churn(crash_window=(0, 2))
        with pytest.raises(ConfigurationError):
            Churn(max_extra_delay=-1)
        with pytest.raises(ConfigurationError):
            Churn(crash_rounds={3: 0})
        with pytest.raises(ConfigurationError):
            Churn(wake_delays={3: -1})

    def test_plan_rejects_non_models(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(["jamming"])

    def test_plan_for_rejects_unknown_model_and_intensity(self):
        with pytest.raises(ConfigurationError):
            plan_for("meteor-strike", 0.5)
        with pytest.raises(ConfigurationError):
            plan_for("jamming", 1.5)


class TestJammingBudget:
    def test_budget_is_spent_exactly(self):
        model = bound(Jamming(10, channels_per_round=3, target="random", seed=5))
        spent = sum(len(model.jammed_channels(r)) for r in range(1, 100))
        assert spent == 10

    def test_primary_target_always_includes_channel_one(self):
        model = bound(Jamming(9, channels_per_round=3, target="primary", seed=5))
        for round_index in range(1, 4):
            jammed = model.jammed_channels(round_index)
            assert 1 in jammed
            assert len(jammed) == 3
        assert model.jammed_channels(4) == frozenset()

    def test_start_round_delays_the_attack(self):
        model = bound(Jamming(2, start_round=5))
        assert model.jammed_channels(4) == frozenset()
        assert model.jammed_channels(5) == frozenset({1})
        assert model.jammed_channels(6) == frozenset({1})
        assert model.jammed_channels(7) == frozenset()

    def test_remainder_round_spends_the_leftover(self):
        # budget 7 at 3/round: two full rounds, then a remainder round of 1.
        model = bound(Jamming(7, channels_per_round=3, seed=2))
        assert len(model.jammed_channels(1)) == 3
        assert len(model.jammed_channels(2)) == 3
        assert len(model.jammed_channels(3)) == 1
        assert model.jammed_channels(4) == frozenset()

    def test_per_round_quota_capped_at_channel_count(self):
        model = bound(Jamming(8, channels_per_round=99, seed=1), num_channels=4)
        assert len(model.jammed_channels(1)) == 4
        assert len(model.jammed_channels(2)) == 4
        assert model.jammed_channels(3) == frozenset()

    def test_schedule_matches_per_round_queries(self):
        model = bound(Jamming(6, channels_per_round=2, target="random", seed=9))
        plan = model.schedule(20)
        assert sum(len(chs) for chs in plan.values()) == 6
        for round_index, channels in plan.items():
            assert model.jammed_channels(round_index) == frozenset(channels)

    def test_scheduled_jamming_budget_property(self):
        model = ScheduledJamming({1: [1, 2], 4: [3]})
        assert model.budget == 3
        assert model.jammed_channels(1) == frozenset({1, 2})
        assert model.jammed_channels(2) == frozenset()
        assert model.jammed_channels(4) == frozenset({3})


class TestDeterminism:
    def test_jamming_schedule_deterministic_in_run_seed(self):
        a = bound(Jamming(12, channels_per_round=4, target="random"), seed=3)
        b = bound(Jamming(12, channels_per_round=4, target="random"), seed=3)
        c = bound(Jamming(12, channels_per_round=4, target="random"), seed=4)
        assert a.schedule(10) == b.schedule(10)
        assert a.schedule(10) != c.schedule(10)

    def test_explicit_seed_overrides_run_seed(self):
        a = bound(Jamming(12, channels_per_round=4, target="random", seed=5), seed=3)
        b = bound(Jamming(12, channels_per_round=4, target="random", seed=5), seed=4)
        assert a.schedule(10) == b.schedule(10)

    def test_cd_noise_is_a_pure_function_of_its_arguments(self):
        model = bound(CDNoise(0.5))
        first = [
            model.perceive(r, c, Feedback.SILENCE)
            for r in range(1, 30)
            for c in range(1, 9)
        ]
        second = [
            model.perceive(r, c, Feedback.SILENCE)
            for r in range(1, 30)
            for c in range(1, 9)
        ]
        assert first == second
        assert any(f is not Feedback.SILENCE for f in first)  # p=0.5 flips some

    def test_cd_noise_misread_differs_from_truth(self):
        model = bound(CDNoise(1.0))
        for outcome in (Feedback.SILENCE, Feedback.MESSAGE, Feedback.COLLISION):
            for r in range(1, 20):
                assert model.perceive(r, 1, outcome) is not outcome

    def test_churn_draws_stable_per_node(self):
        model = bound(Churn(crash_fraction=0.5, late_fraction=0.5))
        crashes = {nid: model.crash_round(nid) for nid in range(1, 40)}
        delays = {nid: model.wake_delay(nid) for nid in range(1, 40)}
        assert crashes == {nid: model.crash_round(nid) for nid in range(1, 40)}
        assert delays == {nid: model.wake_delay(nid) for nid in range(1, 40)}
        assert any(r is not None for r in crashes.values())
        assert any(r is None for r in crashes.values())
        low, high = model.crash_window
        assert all(low <= r <= high for r in crashes.values() if r is not None)
        assert all(0 <= d <= model.max_extra_delay for d in delays.values())

    def test_churn_explicit_entries_win_over_draws(self):
        model = bound(
            Churn(
                crash_rounds={7: 3},
                wake_delays={9: 5},
                crash_fraction=1.0,
                late_fraction=1.0,
            )
        )
        assert model.crash_round(7) == 3
        assert model.wake_delay(9) == 5


class TestComposition:
    def test_jam_sets_union(self):
        plan = bound(
            FaultPlan([ScheduledJamming({1: [2]}), ScheduledJamming({1: [3], 2: [4]})])
        )
        assert plan.jammed_channels(1) == frozenset({2, 3})
        assert plan.jammed_channels(2) == frozenset({4})

    def test_crash_takes_earliest(self):
        plan = bound(
            FaultPlan([Churn(crash_rounds={1: 9}), Churn(crash_rounds={1: 4})])
        )
        assert plan.crash_round(1) == 4
        assert plan.crash_round(2) is None

    def test_wake_delays_add(self):
        plan = bound(
            FaultPlan([Churn(wake_delays={1: 2}), Churn(wake_delays={1: 3})])
        )
        assert plan.wake_delay(1) == 5

    def test_perception_chains_in_order(self):
        plan = bound(FaultPlan([CDNoise(1.0), CDNoise(0.0)]))
        # The certain flip happens; the zero-probability stage passes it on.
        assert plan.perceive(1, 1, Feedback.SILENCE) is not Feedback.SILENCE

    def test_unseeded_siblings_do_not_alias(self):
        plan = bound(
            FaultPlan(
                [
                    Jamming(8, channels_per_round=2, target="random"),
                    Jamming(8, channels_per_round=2, target="random"),
                ]
            )
        )
        first, second = plan.models
        assert first.schedule(10) != second.schedule(10)

    def test_of_normalizes(self):
        assert FaultPlan.of(None) is None
        model = CDNoise(0.1)
        assert FaultPlan.of(model) is model
        plan = FaultPlan.of([model])
        assert isinstance(plan, FaultPlan)
        assert plan.models == (model,)

    def test_plan_for_mapping(self):
        assert plan_for("none", 0.9).models == ()
        assert plan_for("jamming", 0.0).models == ()
        jam = plan_for("jamming", 0.5)
        assert isinstance(jam, Jamming) and jam.budget == 48
        noise = plan_for("cd-noise", 0.25)
        assert isinstance(noise, CDNoise) and noise.flip_probability == 0.25
        churn = plan_for("churn", 0.3)
        assert isinstance(churn, Churn)
        assert churn.crash_fraction == churn.late_fraction == 0.3


class TestSerialization:
    MODELS = [
        FaultModel(),
        Jamming(12, channels_per_round=3, target="random", start_round=4, seed=8),
        ScheduledJamming({2: [1, 5], 7: [3]}),
        CDNoise(0.35, seed=None),
        Churn(
            crash_rounds={4: 6},
            wake_delays={2: 1},
            crash_fraction=0.2,
            crash_window=(3, 9),
            late_fraction=0.1,
            max_extra_delay=4,
            seed=13,
        ),
        FaultPlan([Jamming(5), CDNoise(0.1)]),
    ]

    @pytest.mark.parametrize("model", MODELS, ids=[type(m).__name__ for m in MODELS])
    def test_round_trip_preserves_parameters(self, model):
        assert fault_from_dict(model.to_dict()).to_dict() == model.to_dict()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            fault_from_dict({"kind": "gremlins"})

    def test_envelope_round_trip(self):
        model = FaultPlan([Jamming(7, seed=3), Churn(crash_rounds={2: 5})])
        payload = fault_plan_to_dict(model)
        assert "format_version" in payload
        rebuilt = fault_plan_from_dict(payload)
        assert rebuilt.to_dict() == model.to_dict()

    def test_file_round_trip_behaves_identically(self, tmp_path):
        model = Jamming(10, channels_per_round=2, target="random", seed=21)
        path = tmp_path / "plan.json"
        save_fault_plan(model, str(path))
        rebuilt = load_fault_plan(str(path))
        bound(model, seed=3)
        bound(rebuilt, seed=3)
        assert rebuilt.schedule(40) == model.schedule(40)


class TestEngineSemantics:
    def test_primary_jam_blocks_solve(self):
        # Jam channel 1 for the whole horizon: the lone transmission is
        # destroyed every time, so the run cannot solve.
        schedule = {r: [1] for r in range(1, 65)}
        result = solve(
            TwoActive(),
            n=64,
            num_channels=8,
            activation=activate_pair(64, seed=0),
            seed=0,
            faults=ScheduledJamming(schedule),
        )
        assert not result.solved

    def test_crashed_nodes_take_no_further_actions(self):
        activation = activate_random(64, 8, seed=1)
        doomed = activation.active_ids[0]
        result = solve(
            FNWGeneral(),
            n=64,
            num_channels=8,
            activation=activation,
            seed=1,
            faults=Churn(crash_rounds={doomed: 2}),
            record_trace=True,
        )
        assert result.rounds >= 1
        for record in result.trace.rounds:
            if record.round_index < 2:
                continue
            for activity in record.channels.values():
                assert doomed not in activity.transmitters
                assert doomed not in activity.receivers

    def test_all_crashed_before_wake_is_not_clean_termination(self):
        # Regression: crashed coroutines are popped from the live set, so a
        # churn run used to report ``all_terminated=True`` as if every node
        # had returned cleanly.  Crash-stops are now surfaced separately.
        activation = activate_random(64, 6, seed=2)
        result = solve(
            FNWGeneral(),
            n=64,
            num_channels=8,
            activation=activation,
            seed=2,
            faults=Churn(crash_rounds={nid: 1 for nid in activation.active_ids}),
        )
        assert not result.solved
        assert not result.all_terminated
        assert result.crashed == len(activation.active_ids)
        assert result.rounds == 0

    def test_midrun_crashes_counted_and_block_all_terminated(self):
        # A run where some nodes crash mid-flight must report exactly the
        # crash-stopped count and refuse the "all terminated cleanly" label,
        # even though every surviving coroutine runs to completion.
        activation = activate_random(64, 8, seed=5)
        crashing = sorted(activation.active_ids)[:3]
        result = solve(
            FNWGeneral(),
            n=64,
            num_channels=8,
            activation=activation,
            seed=5,
            stop_on_solve=False,
            faults=Churn(crash_rounds={nid: 2 for nid in crashing}),
        )
        assert result.crashed == len(crashing)
        assert not result.all_terminated

    def test_fault_free_run_reports_zero_crashed(self):
        result = solve(
            FNWGeneral(),
            n=64,
            num_channels=8,
            activation=activate_random(64, 8, seed=5),
            seed=5,
            stop_on_solve=False,
        )
        assert result.crashed == 0
        assert result.all_terminated

    def test_noise_is_observational_only(self):
        # Physical outcomes (the trace) must be untouched by CD noise.
        kwargs = dict(
            n=64,
            num_channels=8,
            activation=activate_random(64, 12, seed=3),
            seed=3,
            record_trace=True,
        )
        plain = solve(FNWGeneral(), **kwargs)
        noisy = solve(FNWGeneral(), faults=CDNoise(0.4), **kwargs)
        plain_rounds = {record.round_index: record for record in plain.trace.rounds}
        for record in noisy.trace.rounds:
            before = plain_rounds.get(record.round_index)
            if before is None:
                continue
            for channel, activity in record.channels.items():
                # Identical participation => identical physical feedback.
                twin = before.channels.get(channel)
                if twin is None:
                    continue
                if (
                    sorted(activity.transmitters) == sorted(twin.transmitters)
                    and sorted(activity.receivers) == sorted(twin.receivers)
                ):
                    assert activity.feedback == twin.feedback

    def test_faulted_runs_reproducible(self):
        kwargs = dict(
            n=64,
            num_channels=8,
            activation=activate_random(64, 10, seed=4),
            seed=4,
        )
        plan = FaultPlan([Jamming(6), CDNoise(0.2), Churn(crash_fraction=0.2)])
        first = solve(FNWGeneral(), faults=plan, **kwargs)
        second = solve(FNWGeneral(), faults=plan, **kwargs)
        assert (first.solved, first.winner, first.rounds) == (
            second.solved,
            second.winner,
            second.rounds,
        )

    def test_fault_events_reach_instrumentation(self):
        log = EventLog()
        result = solve(
            Decay(),
            n=64,
            num_channels=1,
            activation=activate_random(64, 6, seed=5),
            seed=5,
            faults=ScheduledJamming({1: [1], 2: [1]}),
            instrument=log,
        )
        assert result.rounds >= 3  # the jam held the solve off for two rounds
        assert log.events[0].faults.get("jammed") == (1,)
        assert log.events[1].faults.get("jammed") == (1,)
        assert log.events[2].faults == {}


class TestPlanEquivalence:
    """`plan_for` / `FaultPlan` composition edge cases.

    A plan is a transparent container: wrapping a *seeded* model in a
    single-model plan, or nesting that plan inside further plans, must not
    change any hook's answer.  (Seeding matters: an unseeded child gets a
    position-derived sub-seed at bind time, so only explicitly seeded
    models are bind-invariant across nesting depths.)
    """

    @staticmethod
    def _hooks(model, rounds=range(1, 33), nodes=range(1, 17)):
        outcomes = (Feedback.SILENCE, Feedback.MESSAGE, Feedback.COLLISION)
        return {
            "jam": [model.jammed_channels(r) for r in rounds],
            "perceive": [
                model.perceive(r, c, o)
                for r in rounds
                for c in (1, 2, 3)
                for o in outcomes
            ],
            "crash": [model.crash_round(nid) for nid in nodes],
            "wake": [model.wake_delay(nid) for nid in nodes],
        }

    def test_empty_plan_injects_nothing(self):
        plan = bound(FaultPlan())
        hooks = self._hooks(plan)
        assert all(jam == frozenset() for jam in hooks["jam"])
        assert all(crash is None for crash in hooks["crash"])
        assert all(delay == 0 for delay in hooks["wake"])
        # Perception is the identity on every outcome.
        assert plan.perceive(3, 1, Feedback.MESSAGE) is Feedback.MESSAGE

    @pytest.mark.parametrize("model_name", ["jamming", "cd-noise", "churn"])
    def test_single_model_plan_equals_the_direct_model(self, model_name):
        direct = bound(plan_for(model_name, 0.5, seed=99))
        wrapped = bound(FaultPlan([plan_for(model_name, 0.5, seed=99)]))
        assert self._hooks(wrapped) == self._hooks(direct)

    @pytest.mark.parametrize("model_name", ["jamming", "cd-noise", "churn"])
    def test_nested_plans_flatten_semantically(self, model_name):
        direct = bound(plan_for(model_name, 0.5, seed=99))
        nested = bound(
            FaultPlan([FaultPlan([FaultPlan([plan_for(model_name, 0.5, seed=99)])])])
        )
        assert self._hooks(nested) == self._hooks(direct)

    def test_unseeded_model_is_not_nesting_invariant(self):
        # The counterexample that justifies the seeding requirement above:
        # position-derived sub-seeds differ between nesting depths.
        direct = bound(Jamming(16, channels_per_round=2, target="random"))
        nested = bound(FaultPlan([Jamming(16, channels_per_round=2, target="random")]))
        assert self._hooks(direct)["jam"] != self._hooks(nested)["jam"]


class TestTerminalSummaryUnderFaults:
    """Round-limit timeouts stay observable when fault injection is active.

    The engine promises every ``on_run_start`` a balancing ``on_run_end``
    with a terminal ``RunSummary(solved=False)`` *before*
    ``RoundLimitExceeded`` propagates (``test_sim_engine`` pins the benign
    case).  Fault hooks sit inside the round loop, so an active plan —
    crash-heavy churn thinning the population, a jammer sitting on the
    primary channel — must not break that balance; profiled fault sweeps
    rely on it to close their per-run aggregates on every timeout.
    """

    @staticmethod
    def _forever(ctx):
        def forever():
            while True:
                yield listen(1)

        return forever()

    @pytest.mark.parametrize(
        "plan_factory",
        [
            lambda: Churn(crash_fraction=0.75, crash_window=(2, 6), seed=13),
            lambda: Jamming(10_000, channels_per_round=4, target="primary"),
            lambda: FaultPlan(
                [
                    Jamming(10_000, target="primary"),
                    CDNoise(0.5),
                    Churn(crash_fraction=0.5, crash_window=(2, 8)),
                ]
            ),
        ],
        ids=["crash-heavy-churn", "full-budget-jamming", "composite"],
    )
    def test_terminal_summary_precedes_round_limit(self, plan_factory):
        log = EventLog()
        with pytest.raises(RoundLimitExceeded):
            run_execution(
                self._forever,
                n=16,
                num_channels=4,
                active_ids=range(1, 9),
                max_rounds=12,
                faults=plan_factory(),
                instrument=log,
            )
        assert log.summary is not None, "no terminal summary before the raise"
        assert log.summary.solved is False
        assert log.summary.winner is None
        assert log.summary.solved_round is None
        assert log.summary.rounds == 12
        assert len(log.events) == 12
