"""Fault-matrix smoke: one bare and one hardened run per fault family.

This used to live as an inline heredoc in the CI workflow, where a failure
printed a bare traceback with no test identity and the code was invisible to
linters and local runs.  As a pytest module the same matrix runs everywhere
(`pytest tests/test_fault_matrix_smoke.py`), parametrized per fault model.

The contract is asymmetric on purpose: a *bare* run under heavy faults may
fail or even crash (that is what the fault models are for), but the
*hardened* combinator stack must still solve every family at the same
intensity.
"""

import pytest

from repro import FNWGeneral, solve
from repro.faults import plan_for
from repro.robust import solve_hardened
from repro.sim import activate_random

FAULT_MODELS = ("jamming", "cd-noise", "churn")
INTENSITY = 0.4


@pytest.mark.parametrize("model", FAULT_MODELS)
def test_hardened_solves_under_fault_model(model):
    activation = activate_random(64, 8, seed=7)
    result = solve_hardened(
        FNWGeneral(),
        faults=plan_for(model, INTENSITY),
        n=64,
        num_channels=8,
        activation=activation,
        seed=7,
        max_rounds=2000,
    )
    assert result.solved, f"hardened run failed under {model}"


@pytest.mark.parametrize("model", FAULT_MODELS)
def test_bare_run_completes_or_fails_cleanly(model):
    """A bare run may fail to solve, but must not corrupt the engine: any
    outcome other than a normal result must surface as an exception, and a
    normal result must carry consistent solve fields."""
    activation = activate_random(64, 8, seed=7)
    try:
        result = solve(
            FNWGeneral(),
            n=64,
            num_channels=8,
            activation=activation,
            seed=7,
            max_rounds=2000,
            faults=plan_for(model, INTENSITY),
        )
    except Exception:
        return  # a loud failure is an acceptable bare-run outcome
    if result.solved:
        assert result.winner is not None
        assert result.solved_round is not None
        assert result.solved_round <= result.rounds
    else:
        assert result.winner is None
