"""Tests for SplitCheck (Section 4, Lemma 3).

SplitCheck is deterministic given the two renamed ids, so beyond running it
through real channels we can check it exhaustively against the channel
tree's ground truth.
"""

import itertools

import pytest
from hypothesis import given, strategies as st

from repro.core.splitcheck import split_check, split_check_rounds_worst_case
from repro.experiments.splitcheck_exact import pure_split_check
from repro.sim import run_execution
from repro.tree import ChannelTree


def run_split_check_pair(num_channels, id_a, id_b, record=False):
    """Drive the real coroutine for two nodes holding given ids."""
    tree = ChannelTree(num_channels)
    levels = {}

    def factory(ctx):
        def coroutine():
            my_id = id_a if ctx.node_id == 1 else id_b
            level = yield from split_check(ctx, tree, my_id)
            levels[ctx.node_id] = level

        return coroutine()

    result = run_execution(
        factory,
        n=num_channels,
        num_channels=num_channels,
        active_ids=[1, 2],
        record_trace=record,
        # A probe can land alone on channel 1 (an "accidental solve"); run
        # to completion so we observe the search's own answer.
        stop_on_solve=False,
    )
    return levels, result


class TestPureSearch:
    @pytest.mark.parametrize("num_channels", [2, 4, 8, 16, 32])
    def test_exhaustive_correctness(self, num_channels):
        tree = ChannelTree(num_channels)
        for id_a, id_b in itertools.combinations(range(1, num_channels + 1), 2):
            level, probes = pure_split_check(tree, id_a, id_b)
            assert level == tree.divergence_level(id_a, id_b)
            assert probes <= split_check_rounds_worst_case(tree.height)

    @given(st.integers(min_value=1, max_value=10), st.data())
    def test_property(self, exponent, data):
        tree = ChannelTree(1 << exponent)
        id_a = data.draw(st.integers(min_value=1, max_value=tree.num_leaves))
        id_b = data.draw(
            st.integers(min_value=1, max_value=tree.num_leaves).filter(
                lambda x: x != id_a
            )
        )
        level, probes = pure_split_check(tree, id_a, id_b)
        assert level == tree.divergence_level(id_a, id_b)
        assert 0 < level <= tree.height
        assert probes >= 1


class TestDistributedSearch:
    @pytest.mark.parametrize(
        "num_channels,id_a,id_b",
        [(4, 1, 2), (4, 1, 4), (8, 3, 6), (16, 15, 16), (64, 1, 64), (64, 33, 34)],
    )
    def test_both_nodes_agree_on_true_level(self, num_channels, id_a, id_b):
        tree = ChannelTree(num_channels)
        levels, _result = run_split_check_pair(num_channels, id_a, id_b)
        expected = tree.divergence_level(id_a, id_b)
        assert levels == {1: expected, 2: expected}

    def test_search_is_synchronized(self):
        # Both coroutines finish in the same round: the execution terminates
        # with both marks present and no protocol violation.
        levels, result = run_split_check_pair(32, 5, 29)
        assert len(levels) == 2
        assert result.all_terminated

    def test_round_cost_is_loglog(self):
        # For C = 1024, height 10: at most bit_length(10) = 4 probe rounds.
        _levels, result = run_split_check_pair(1024, 1, 2)
        assert result.rounds <= split_check_rounds_worst_case(10)

    def test_exhaustive_small_tree_through_channels(self):
        tree = ChannelTree(8)
        for id_a, id_b in itertools.combinations(range(1, 9), 2):
            levels, _ = run_split_check_pair(8, id_a, id_b)
            assert levels[1] == levels[2] == tree.divergence_level(id_a, id_b)


class TestWorstCaseBound:
    def test_values(self):
        assert split_check_rounds_worst_case(0) == 0
        assert split_check_rounds_worst_case(1) == 1
        assert split_check_rounds_worst_case(2) == 2
        assert split_check_rounds_worst_case(10) == 4

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            split_check_rounds_worst_case(-1)
