"""Long-horizon arrival soak: bounded backlog near the stability boundary.

The full soak is nightly-CI material (minutes, not seconds), so it is gated
behind ``REPRO_SOAK=1``; a scaled-down smoke version of the same invariants
always runs so the soak logic itself cannot rot unnoticed.

Invariants checked on a subcritical Poisson stream just below the measured
stability boundary:

* the backlog trajectory stays bounded (peak well below total injections —
  the system is serving, not queueing);
* the stream fully drains within the drain window;
* per-run terminal accounting is conserved: served + unserved == injected,
  and every latency is at least 1 round;
* when ``REPRO_SOAK_JSONL`` is set, per-segment metrics are appended as
  JSON lines (the nightly workflow uploads this file as an artifact).
"""

import json
import os

import pytest

from repro.baselines import SawtoothBackoff
from repro.sim.arrivals import PoissonArrivals, run_stream

#: Arrival rate for the soak: below sawtooth's single-channel boundary
#: (~0.3 at these horizons) but close enough to exercise real contention.
SOAK_RATE = 0.22

_SOAK = os.environ.get("REPRO_SOAK", "") == "1"


def _run_segments(horizon, segments, base_seed):
    """Run independent stream segments and yield their metric dicts."""
    for index in range(segments):
        stream = run_stream(
            SawtoothBackoff(),
            PoissonArrivals(SOAK_RATE),
            horizon=horizon,
            seed=base_seed + index,
        )
        yield stream, stream.metrics()


def _check_invariants(stream, metrics):
    assert metrics["served"] + metrics["unserved"] == metrics["injected"]
    assert metrics["drained"] == 1.0, (
        f"stream failed to drain: {metrics['unserved']:.0f} of "
        f"{metrics['injected']:.0f} packets leftover"
    )
    # Bounded backlog: the queue never holds more than a small fraction of
    # everything ever injected (a growing queue would approach 1.0).
    if metrics["injected"] >= 20:
        assert metrics["backlog_peak"] <= 0.5 * metrics["injected"]
    assert all(latency >= 1 for latency in stream.latencies.values())
    trajectory = stream.backlog_trajectory()
    assert all(backlog >= 0 for backlog in trajectory)
    assert trajectory[-1] == 0


def _maybe_export(records):
    path = os.environ.get("REPRO_SOAK_JSONL")
    if not path:
        return
    with open(path, "a", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")


def test_soak_smoke_bounded_backlog():
    """Always-on scaled-down soak (seconds, not minutes)."""
    records = []
    for stream, metrics in _run_segments(horizon=300, segments=3, base_seed=100):
        _check_invariants(stream, metrics)
        records.append(dict(metrics, segment_horizon=300.0))
    _maybe_export(records)


@pytest.mark.skipif(not _SOAK, reason="set REPRO_SOAK=1 for the full soak")
def test_soak_long_horizon_bounded_backlog():
    """Nightly soak: long segments near the boundary, metrics exported."""
    records = []
    latencies = []
    for stream, metrics in _run_segments(
        horizon=5000, segments=4, base_seed=1000
    ):
        _check_invariants(stream, metrics)
        latencies.extend(stream.latencies.values())
        records.append(dict(metrics, segment_horizon=5000.0))
    # Steady-state sanity across segments: latency tail must stay far from
    # the horizon (queueing delay, not starvation-until-drain-window).
    latencies.sort()
    p99 = latencies[max(0, int(0.99 * len(latencies)) - 1)]
    assert p99 < 1000, f"p99 latency {p99} rounds suggests unstable queueing"
    _maybe_export(records)
