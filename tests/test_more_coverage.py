"""Additional coverage for convenience APIs and secondary paths."""

import pytest

from repro import CollisionDetection, Decay, FNWGeneral
from repro.experiments.common import leaf_election_trial
from repro.sim import (
    ConfigurationError,
    Network,
    activate_random,
    run_execution,
    transmit,
)


class TestNetworkHelpers:
    def test_validate_channel_accepts_range(self):
        network = Network(n=8, num_channels=4)
        for channel in (1, 2, 3, 4):
            network.validate_channel(channel)  # no raise

    def test_validate_channel_rejects_outside(self):
        network = Network(n=8, num_channels=4)
        with pytest.raises(ConfigurationError):
            network.validate_channel(0)
        with pytest.raises(ConfigurationError):
            network.validate_channel(5)

    def test_default_cd_is_strong(self):
        assert Network(n=2, num_channels=2).collision_detection is (
            CollisionDetection.STRONG
        )


class TestRunExecutionConvenience:
    def test_collision_detection_kwarg(self):
        observations = []

        def factory(ctx):
            def coroutine():
                obs = yield transmit(1, "x")
                observations.append(obs)

            return coroutine()

        run_execution(
            factory,
            n=2,
            num_channels=2,
            active_ids=[1],
            collision_detection=CollisionDetection.RECEIVER_ONLY,
        )
        # Lone transmitter, but blinded: observes NONE instead of MESSAGE.
        assert observations[0].feedback.value == "none"

    def test_default_strong(self):
        observations = []

        def factory(ctx):
            def coroutine():
                obs = yield transmit(1, "x")
                observations.append(obs)

            return coroutine()

        run_execution(factory, n=2, num_channels=2, active_ids=[1])
        assert observations[0].alone


class TestLeafElectionTrialHelpers:
    def test_adjacent_mode(self):
        metrics = leaf_election_trial(64, 8, seed=1, adjacent=True)
        assert metrics["solved"] == 1.0
        assert metrics["rounds"] > 0

    def test_too_many_leaves_rejected(self):
        with pytest.raises(ValueError):
            leaf_election_trial(16, 100, seed=0)

    def test_cohort_flag_changes_nothing_for_tiny_x(self):
        # With x = 1 there is no search at all; both modes take 1 round.
        fast = leaf_election_trial(64, 1, seed=2, use_cohort_search=True)
        slow = leaf_election_trial(64, 1, seed=2, use_cohort_search=False)
        assert fast["rounds"] == slow["rounds"] == 1.0


class TestProtocolReuse:
    def test_single_instance_many_executions(self):
        protocol = FNWGeneral()
        outcomes = set()
        for seed in range(5):
            result = run_execution(
                protocol,
                n=256,
                num_channels=16,
                active_ids=list(activate_random(256, 50, seed=seed).active_ids),
                seed=seed,
            )
            assert result.solved
            outcomes.add(result.winner)
        assert len(outcomes) > 1  # no state leaked across executions

    def test_instance_statelessness_decay(self):
        protocol = Decay()
        first = run_execution(
            protocol, n=128, num_channels=1, seed=9
        )
        second = run_execution(
            protocol, n=128, num_channels=1, seed=9
        )
        assert first.solved_round == second.solved_round
