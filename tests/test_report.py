"""Tests for the EXPERIMENTS.md report generator."""

import pytest

from repro.report import ReportOptions, SECTIONS, build_report, write_report


class TestReportStructure:
    def test_sections_cover_registry(self):
        # Every experiment id e1..e22 (except e2, folded into e1) appears.
        keys = {title.split(" ")[0].lower().split("/")[0] for title, _, _ in SECTIONS}
        expected = {f"e{i}" for i in range(1, 23) if i != 2}
        assert keys == expected

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            build_report(ReportOptions(scale="huge"))

    def test_single_section_report(self):
        text = build_report(ReportOptions(scale="quick", only=["e3"]))
        assert "# EXPERIMENTS — paper vs measured" in text
        assert "## E3 — Lemma 3: SplitCheck" in text
        assert "**Paper claim.**" in text
        assert "**Measured verdict.**" in text
        assert "| C |" in text  # the markdown table
        # Other sections excluded.
        assert "## E9" not in text

    def test_write_report(self, tmp_path):
        path = tmp_path / "out.md"
        write_report(str(path), ReportOptions(scale="quick", only=["e3"]))
        assert path.read_text().startswith("# EXPERIMENTS")
