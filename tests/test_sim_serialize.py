"""Tests for execution-trace serialization."""

import json

import pytest

from repro import FNWGeneral, solve
from repro.sim import Feedback, activate_random
from repro.sim.serialize import (
    load_trace,
    result_to_dict,
    result_to_json,
    save_result,
    trace_from_dict,
)


@pytest.fixture
def executed():
    return solve(
        FNWGeneral(),
        n=256,
        num_channels=16,
        activation=activate_random(256, 40, seed=3),
        seed=3,
        record_trace=True,
        stop_on_solve=False,
    )


class TestRoundTrip:
    def test_structural_roundtrip(self, executed):
        payload = result_to_dict(executed)
        trace = trace_from_dict(payload)
        assert len(trace.rounds) == len(executed.trace.rounds)
        assert len(trace.marks) == len(executed.trace.marks)
        for original, restored in zip(executed.trace.rounds, trace.rounds):
            assert restored.round_index == original.round_index
            assert restored.active_count == original.active_count
            assert set(restored.channels) == set(original.channels)
            for channel in original.channels:
                assert (
                    restored.channels[channel].transmitters
                    == original.channels[channel].transmitters
                )
                assert (
                    restored.channels[channel].feedback
                    is original.channels[channel].feedback
                )

    def test_marks_roundtrip(self, executed):
        trace = trace_from_dict(result_to_dict(executed))
        original = [(m.round_index, m.node_id, m.label) for m in executed.trace.marks]
        restored = [(m.round_index, m.node_id, m.label) for m in trace.marks]
        assert restored == original

    def test_channel_utilization_preserved(self, executed):
        trace = trace_from_dict(result_to_dict(executed))
        assert trace.channel_utilization() == executed.trace.channel_utilization()

    def test_json_is_valid(self, executed):
        payload = json.loads(result_to_json(executed))
        assert payload["solved"] is True
        assert payload["winner"] == executed.winner

    def test_file_roundtrip(self, executed, tmp_path):
        path = tmp_path / "trace.json"
        save_result(executed, str(path))
        trace = load_trace(str(path))
        assert len(trace.rounds) == len(executed.trace.rounds)


class TestRobustness:
    def test_version_checked(self):
        with pytest.raises(ValueError):
            trace_from_dict({"format_version": 99})

    def test_non_jsonable_payloads_reprd(self, executed):
        # Tuples in mark payloads and messages must not break serialization.
        text = result_to_json(executed)
        assert isinstance(text, str)

    def test_feedback_values_roundtrip(self):
        for feedback in Feedback:
            assert Feedback(feedback.value) is feedback
