"""Unit tests for the action and feedback primitives of the simulator."""

import pytest

from repro.sim import Feedback, IDLE, Observation, idle, listen, resolve, transmit


class TestActions:
    def test_transmit_builder(self):
        action = transmit(3, "payload")
        assert action.channel == 3
        assert action.transmit is True
        assert action.message == "payload"
        assert action.participates

    def test_listen_builder(self):
        action = listen(7)
        assert action.channel == 7
        assert action.transmit is False
        assert action.message is None
        assert action.participates

    def test_idle_builder(self):
        action = idle()
        assert action.channel is None
        assert not action.participates

    def test_idle_singleton_is_idle(self):
        assert IDLE.channel is None
        assert not IDLE.participates

    def test_actions_are_frozen(self):
        action = transmit(1)
        with pytest.raises(AttributeError):
            action.channel = 2

    def test_none_message_is_valid_payload(self):
        assert transmit(1, None).message is None


class TestResolve:
    def test_zero_transmitters_is_silence(self):
        assert resolve(0) is Feedback.SILENCE

    def test_one_transmitter_is_message(self):
        assert resolve(1) is Feedback.MESSAGE

    @pytest.mark.parametrize("count", [2, 3, 10, 1000])
    def test_many_transmitters_is_collision(self, count):
        assert resolve(count) is Feedback.COLLISION


class TestObservation:
    def test_silence_flags(self):
        obs = Observation(feedback=Feedback.SILENCE, channel=1, round_index=4)
        assert obs.silence
        assert not obs.collision
        assert not obs.got_message
        assert not obs.alone

    def test_collision_flags(self):
        obs = Observation(feedback=Feedback.COLLISION, channel=2, transmitted=True)
        assert obs.collision
        assert not obs.alone

    def test_alone_requires_transmission(self):
        heard = Observation(feedback=Feedback.MESSAGE, message="m", transmitted=False)
        assert heard.got_message
        assert not heard.alone
        solo = Observation(feedback=Feedback.MESSAGE, message="m", transmitted=True)
        assert solo.alone

    def test_idle_observation(self):
        obs = Observation(feedback=Feedback.NONE, round_index=9)
        assert not obs.silence
        assert not obs.collision
        assert not obs.got_message
        assert not obs.alone
