"""CheckpointStore hygiene: visible corruption, compaction, no leaked fds.

The store's kill-safety contract (a torn tail line is skipped, never
fatal) used to be *silent*; these tests pin the visibility half — every
skipped line counts on ``sweep/checkpoint/skipped_lines`` and each damaged
load warns once — plus :meth:`CheckpointStore.compact` and the runner's
guarantee that a mid-sweep exception cannot leak an open writer handle.
"""

import json
import warnings

import pytest

from repro.analysis.parallel import register_trial
from repro.analysis.runner import CheckpointStore, SweepRunner
from repro.analysis.sweep import grid_product
from repro.obs.metrics import MetricsRegistry
from repro.sim.serialize import checkpoint_record_to_dict

GRID = grid_product(n=[16, 32])
TRIALS = 4
MASTER_SEED = 7
TRIAL = "ckpt-test-flaky"


@register_trial(TRIAL)
def flaky_trial(seed, n):
    """Raises deterministically for a third of the seeds (keyed on seed)."""
    if seed % 3 == 0:
        raise RuntimeError(f"deliberate failure for seed {seed}")
    return {"rounds": float(seed % 7 + n), "solved": 1.0}


def _record(seed, *, n=16, metrics=None):
    return checkpoint_record_to_dict(
        trial=TRIAL,
        params={"n": n},
        master_seed=MASTER_SEED,
        stream=0,
        seed=seed,
        metrics=metrics if metrics is not None else {"rounds": 1.0},
    )


def _write_lines(store, lines):
    with open(store.path_for(TRIAL, MASTER_SEED), "w", encoding="utf-8") as handle:
        for line in lines:
            handle.write(line + "\n")


class TestSkippedLineVisibility:
    def test_clean_load_neither_warns_nor_counts(self, tmp_path):
        metrics = MetricsRegistry()
        store = CheckpointStore(str(tmp_path), metrics=metrics)
        _write_lines(store, [json.dumps(_record(1)), json.dumps(_record(2))])
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any warning fails the test
            records = store.load(TRIAL, MASTER_SEED)
        assert len(records) == 2
        counters = metrics.snapshot()["counters"]
        assert "sweep/checkpoint/skipped_lines" not in counters

    def test_damaged_load_counts_and_warns_once(self, tmp_path):
        metrics = MetricsRegistry()
        store = CheckpointStore(str(tmp_path), metrics=metrics)
        _write_lines(
            store,
            [
                json.dumps(_record(1)),
                '{"torn": tail',  # unparsable JSON
                json.dumps({"format_version": 999}),  # foreign version
                json.dumps(_record(2))[:-5],  # truncated record
            ],
        )
        with pytest.warns(RuntimeWarning, match="skipped 3 invalid line") as caught:
            records = store.load(TRIAL, MASTER_SEED)
        assert len(caught) == 1  # a single warning, not one per line
        assert len(records) == 1
        counters = metrics.snapshot()["counters"]
        assert counters["sweep/checkpoint/skipped_lines"] == 3

    def test_missing_file_loads_empty(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        assert store.load(TRIAL, MASTER_SEED) == {}


class TestCompact:
    def test_compact_missing_file_is_a_noop(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        stats = store.compact(TRIAL, MASTER_SEED)
        assert stats == {"kept": 0, "dropped_superseded": 0, "dropped_invalid": 0}

    def test_compact_drops_superseded_and_invalid(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        superseding = _record(1, metrics={"rounds": 9.0})
        _write_lines(
            store,
            [
                json.dumps(_record(1)),  # superseded by the later line
                json.dumps(_record(2)),
                "not json at all",
                json.dumps(superseding),
            ],
        )
        before = store.compact(TRIAL, MASTER_SEED)
        assert before == {"kept": 2, "dropped_superseded": 1, "dropped_invalid": 1}
        with open(store.path_for(TRIAL, MASTER_SEED), "r", encoding="utf-8") as handle:
            lines = [json.loads(line) for line in handle if line.strip()]
        assert len(lines) == 2
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            records = store.load(TRIAL, MASTER_SEED)  # now pristine
        assert any(r["metrics"]["rounds"] == 9.0 for r in records.values())

    def test_compact_preserves_load_semantics(self, tmp_path):
        """Compaction must keep exactly what load() would surface."""
        store = CheckpointStore(str(tmp_path))
        _write_lines(
            store,
            [json.dumps(_record(seed, n=n)) for n in (16, 32) for seed in (1, 2, 3)]
            + [json.dumps(_record(2, n=16, metrics={"rounds": 5.0}))],
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            before = store.load(TRIAL, MASTER_SEED)
        store.compact(TRIAL, MASTER_SEED)
        after = store.load(TRIAL, MASTER_SEED)
        assert after == before

    def test_retry_failures_after_compaction_reruns_only_failures(self, tmp_path):
        """The resume contract survives a compaction: completed trials stay
        cached, failed ones re-run (and, deterministically, fail again)."""
        metrics = MetricsRegistry()
        with SweepRunner(
            processes=1, checkpoint_dir=str(tmp_path), metrics=metrics
        ) as runner:
            first = runner.run_grid(
                TRIAL, GRID, trials=TRIALS, master_seed=MASTER_SEED
            )
        failed = sum(len(cell.failures) for cell in first.cells)
        completed = sum(len(cell.trials) for cell in first.cells)
        assert failed and completed

        store = CheckpointStore(str(tmp_path))
        stats = store.compact(TRIAL, MASTER_SEED)
        assert stats["kept"] == failed + completed

        metrics = MetricsRegistry()
        with SweepRunner(
            processes=1,
            checkpoint_dir=str(tmp_path),
            retry_failures=True,
            metrics=metrics,
        ) as runner:
            second = runner.run_grid(
                TRIAL, GRID, trials=TRIALS, master_seed=MASTER_SEED
            )
        counters = metrics.snapshot()["counters"]
        assert counters["sweep/trials_executed"] == failed
        assert counters["sweep/trials_cached"] == completed
        assert [len(c.trials) for c in second.cells] == [
            len(c.trials) for c in first.cells
        ]


class TestWriterLifecycle:
    def test_mid_sweep_exception_leaks_no_open_handles(self, tmp_path, monkeypatch):
        """A progress callback raising mid-cell must close the checkpoint
        writer on the way out (the contextmanager path), so an aborted
        sweep leaves no dangling fds behind."""
        handles = []
        original = CheckpointStore.open_writer

        def spying_open_writer(self, trial, master_seed):
            handle = original(self, trial, master_seed)
            handles.append(handle)
            return handle

        monkeypatch.setattr(CheckpointStore, "open_writer", spying_open_writer)

        def exploding_progress(done, total):
            if done >= 2:
                raise RuntimeError("mid-sweep abort")

        with SweepRunner(
            processes=1, checkpoint_dir=str(tmp_path), progress=exploding_progress
        ) as runner:
            with pytest.raises(RuntimeError, match="mid-sweep abort"):
                runner.run_grid(TRIAL, GRID, trials=TRIALS, master_seed=MASTER_SEED)
        assert handles, "the checkpoint writer must have been opened"
        assert all(handle.closed for handle in handles)

    def test_aborted_sweep_resumes_from_flushed_records(self, tmp_path):
        """The handle hygiene above is what makes this safe: records written
        before the abort are already flushed and resume cleanly."""
        count = {"done": 0}

        def exploding_progress(done, total):
            count["done"] = done
            if done >= 3:
                raise RuntimeError("mid-sweep abort")

        with SweepRunner(
            processes=1, checkpoint_dir=str(tmp_path), progress=exploding_progress
        ) as runner:
            with pytest.raises(RuntimeError):
                runner.run_grid(TRIAL, GRID, trials=TRIALS, master_seed=MASTER_SEED)

        metrics = MetricsRegistry()
        with SweepRunner(
            processes=1, checkpoint_dir=str(tmp_path), metrics=metrics
        ) as runner:
            runner.run_grid(TRIAL, GRID, trials=TRIALS, master_seed=MASTER_SEED)
        counters = metrics.snapshot()["counters"]
        assert counters["sweep/trials_cached"] >= count["done"]
        total = counters["sweep/trials_cached"] + counters.get(
            "sweep/trials_executed", 0
        )
        assert total == len(GRID) * TRIALS
