"""Chaos soak: repeated supervised sweeps under randomized harness faults.

The full soak is nightly-CI material (many chaos seeds, wall-clock spent
inside watchdog windows), so it is gated behind ``REPRO_SOAK=1``; a
scaled-down smoke round of the same invariants always runs so the soak
logic itself cannot rot unnoticed.

Invariants checked per chaos round (one supervised checkpointed sweep under
a mixed kill/hang/error plan eligible on first dispatches only):

* the grid *converges*: results equal the serial fault-free reference —
  chaos may cost retries and pool restarts but never correctness;
* record accounting is exact: one checkpoint record per trial identity,
  zero lost, zero duplicated, all ``ok``;
* a follow-up resume is a pure cache hit (no trial re-runs);
* when ``REPRO_SOAK_JSONL`` is set, per-round supervision counters are
  appended as JSON lines (the nightly workflow uploads this file).
"""

import json
import os

import pytest

from repro.analysis.parallel import register_trial
from repro.analysis.runner import CheckpointStore, SweepRunner, checkpoint_key
from repro.analysis.supervise import SupervisionPolicy
from repro.analysis.sweep import grid_product, run_sweep
from repro.faults.chaos import ChaosPlan
from repro.obs.metrics import MetricsRegistry

_SOAK = os.environ.get("REPRO_SOAK", "") == "1"

TRIAL = "chaos-soak-trial"
MASTER_SEED = 17

#: Mixed plan: on a trial's first dispatch, half of all dispatches
#: misbehave (worker SIGKILL, 30 s hang, or injected exception); retries
#: run clean, so every round must converge.
CHAOS_KWARGS = dict(kill=0.25, hang=0.1, error=0.15, attempts=1)

POLICY = SupervisionPolicy(
    timeout=2.0, max_attempts=3, backoff_base=0.0, quarantine_after=3
)


@register_trial(TRIAL)
def soak_trial(seed, n, C):
    """A cheap deterministic trial; all the hostility comes from chaos."""
    return {"rounds": float(seed % 11 + n + C), "solved": 1.0}


def _reference(grid, trials):
    def make(params):
        return lambda seed: soak_trial(seed, **params)

    return run_sweep(grid, make, trials=trials, master_seed=MASTER_SEED)


def _cells_data(cells):
    return [(dict(c.params), [dict(t) for t in c.trials]) for c in cells]


def _chaos_round(chaos_seed, directory, grid, trials):
    """One supervised chaos sweep; returns its supervision counters."""
    metrics = MetricsRegistry()
    plan = ChaosPlan(seed=chaos_seed, **CHAOS_KWARGS)
    with SweepRunner(
        processes=2,
        checkpoint_dir=directory,
        supervision=POLICY,
        chaos=plan,
        metrics=metrics,
    ) as runner:
        sweep = runner.run_grid(TRIAL, grid, trials=trials, master_seed=MASTER_SEED)

    assert _cells_data(sweep.cells) == _cells_data(_reference(grid, trials).cells)

    store = CheckpointStore(directory)
    with open(store.path_for(TRIAL, MASTER_SEED), "r", encoding="utf-8") as handle:
        raw = [json.loads(line) for line in handle if line.strip()]
    assert len(raw) == len(grid) * trials, "lost or duplicated trial records"
    keys = {
        checkpoint_key(
            r["trial"], r["params"], r["master_seed"], r["stream"], r["seed"]
        )
        for r in raw
    }
    assert len(keys) == len(raw)
    assert all(r["status"] == "ok" for r in raw)

    resume_metrics = MetricsRegistry()
    with SweepRunner(
        processes=1, checkpoint_dir=directory, metrics=resume_metrics
    ) as runner:
        runner.run_grid(TRIAL, grid, trials=trials, master_seed=MASTER_SEED)
    counters = resume_metrics.snapshot()["counters"]
    assert counters.get("sweep/trials_executed", 0) == 0
    assert counters["sweep/trials_cached"] == len(grid) * trials

    return metrics.snapshot()["counters"]


def _append_jsonl(payload):
    path = os.environ.get("REPRO_SOAK_JSONL", "")
    if not path:
        return
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(payload, sort_keys=True) + "\n")


def test_chaos_smoke_round(tmp_path):
    """Always-on scaled-down soak round: one chaos seed, a small grid."""
    grid = grid_product(n=[32], C=[2])
    counters = _chaos_round(1, str(tmp_path), grid, trials=4)
    _append_jsonl({"round": "smoke", "chaos_seed": 1, "counters": counters})


@pytest.mark.skipif(not _SOAK, reason="chaos soak runs in nightly CI (REPRO_SOAK=1)")
@pytest.mark.parametrize("chaos_seed", list(range(2, 10)))
def test_chaos_soak_rounds(tmp_path, chaos_seed):
    """Nightly: eight independent chaos seeds over a wider grid, each with
    full convergence, record-accounting, and pure-cache-resume checks."""
    grid = grid_product(n=[32, 64], C=[2, 4])
    counters = _chaos_round(chaos_seed, str(tmp_path), grid, trials=5)
    _append_jsonl({"round": "soak", "chaos_seed": chaos_seed, "counters": counters})
