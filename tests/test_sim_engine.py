"""Engine semantics tests: the channel model of Section 3, solve detection,
lifecycle, validation, and tracing.

Most tests drive the engine with small scripted protocols so every round's
expected outcome is known exactly.
"""

import pytest

from repro.sim import (
    Action,
    ConfigurationError,
    Engine,
    Feedback,
    Network,
    ProtocolViolation,
    RoundLimitExceeded,
    idle,
    listen,
    run_execution,
    transmit,
)


def scripted(script_by_node):
    """Protocol factory replaying a fixed per-node list of actions.

    Each node also records the observations it saw in ``observations``.
    """
    observations = {}

    def factory(ctx):
        def coroutine():
            seen = observations.setdefault(ctx.node_id, [])
            for action in script_by_node.get(ctx.node_id, []):
                observation = yield action
                seen.append(observation)

        return coroutine()

    factory.observations = observations
    return factory


class TestChannelSemantics:
    def test_silence_for_lone_listener(self):
        factory = scripted({1: [listen(2)]})
        run_execution(factory, n=4, num_channels=4, active_ids=[1])
        [obs] = factory.observations[1]
        assert obs.feedback is Feedback.SILENCE
        assert obs.channel == 2

    def test_message_delivered_to_listener_and_transmitter(self):
        factory = scripted({1: [transmit(3, "hello")], 2: [listen(3)]})
        run_execution(factory, n=4, num_channels=4, active_ids=[1, 2])
        [tx_obs] = factory.observations[1]
        [rx_obs] = factory.observations[2]
        # Strong CD: the lone transmitter learns it was alone (MESSAGE).
        assert tx_obs.feedback is Feedback.MESSAGE
        assert tx_obs.alone
        assert rx_obs.feedback is Feedback.MESSAGE
        assert rx_obs.message == "hello"

    def test_collision_seen_by_everyone_including_transmitters(self):
        factory = scripted(
            {1: [transmit(2, "a")], 2: [transmit(2, "b")], 3: [listen(2)]}
        )
        run_execution(factory, n=4, num_channels=4, active_ids=[1, 2, 3])
        for node in (1, 2, 3):
            [obs] = factory.observations[node]
            assert obs.feedback is Feedback.COLLISION
            assert obs.message is None

    def test_channels_are_independent(self):
        factory = scripted(
            {
                1: [transmit(2, "x")],
                2: [listen(2)],
                3: [transmit(3, "y")],
                4: [transmit(3, "z")],
            }
        )
        run_execution(factory, n=4, num_channels=4, active_ids=[1, 2, 3, 4])
        assert factory.observations[2][0].message == "x"
        assert factory.observations[3][0].feedback is Feedback.COLLISION
        assert factory.observations[4][0].feedback is Feedback.COLLISION

    def test_idle_node_observes_nothing(self):
        factory = scripted({1: [idle()], 2: [transmit(1, "m")]})
        run_execution(factory, n=4, num_channels=4, active_ids=[1, 2])
        [obs] = factory.observations[1]
        assert obs.feedback is Feedback.NONE
        assert obs.channel is None

    def test_transmitted_flag_echoed(self):
        factory = scripted({1: [transmit(2)], 2: [listen(2)]})
        run_execution(factory, n=4, num_channels=4, active_ids=[1, 2])
        assert factory.observations[1][0].transmitted
        assert not factory.observations[2][0].transmitted


class TestSolveDetection:
    def test_solo_on_primary_solves(self):
        factory = scripted({1: [transmit(1, "win")]})
        result = run_execution(factory, n=4, num_channels=4, active_ids=[1])
        assert result.solved
        assert result.solved_round == 1
        assert result.winner == 1

    def test_solo_on_other_channel_does_not_solve(self):
        factory = scripted({1: [transmit(2, "nope")]})
        result = run_execution(factory, n=4, num_channels=4, active_ids=[1])
        assert not result.solved
        assert result.winner is None

    def test_collision_on_primary_does_not_solve(self):
        factory = scripted({1: [transmit(1)], 2: [transmit(1)]})
        result = run_execution(factory, n=4, num_channels=4, active_ids=[1, 2])
        assert not result.solved

    def test_first_solving_round_reported(self):
        factory = scripted(
            {
                1: [listen(1), transmit(1, "a"), transmit(1, "late")],
                2: [listen(1), listen(1), listen(1)],
            }
        )
        result = run_execution(
            factory, n=4, num_channels=4, active_ids=[1, 2], stop_on_solve=False
        )
        assert result.solved
        assert result.solved_round == 2
        assert result.winner == 1

    def test_stop_on_solve_halts_execution(self):
        factory = scripted({1: [transmit(1, "w"), transmit(2), transmit(2)]})
        result = run_execution(factory, n=4, num_channels=4, active_ids=[1])
        assert result.solved_round == 1
        assert result.rounds == 1

    def test_receiver_on_primary_does_not_block_solve(self):
        factory = scripted({1: [transmit(1, "w")], 2: [listen(1)]})
        result = run_execution(factory, n=4, num_channels=4, active_ids=[1, 2])
        assert result.solved
        assert result.winner == 1


class TestLifecycle:
    def test_all_terminated_without_solving(self):
        factory = scripted({1: [listen(2)], 2: [listen(3)]})
        result = run_execution(factory, n=4, num_channels=4, active_ids=[1, 2])
        assert not result.solved
        assert result.all_terminated
        assert result.rounds == 1

    def test_immediately_returning_protocol(self):
        def factory(ctx):
            def coroutine():
                return
                yield  # pragma: no cover - makes this a generator

            return coroutine()

        result = run_execution(factory, n=4, num_channels=4, active_ids=[1, 2])
        assert not result.solved
        assert result.all_terminated
        assert result.rounds == 0

    def test_round_limit_exceeded_raises(self):
        def factory(ctx):
            def forever():
                while True:
                    yield listen(2)

            return forever()

        with pytest.raises(RoundLimitExceeded):
            run_execution(factory, n=4, num_channels=4, active_ids=[1], max_rounds=10)

    def test_round_limit_delivers_terminal_summary_first(self):
        """Every on_run_start is balanced by exactly one on_run_end.

        A run that exhausts its budget must hand its sink a terminal
        ``RunSummary(solved=False, ...)`` before ``RoundLimitExceeded``
        propagates — otherwise long-lived aggregators (profiled sweeps,
        the metrics CLI) leak a half-open run on every timeout.
        """
        from repro.obs import EventLog

        def factory(ctx):
            def forever():
                while True:
                    yield listen(2)

            return forever()

        log = EventLog()
        with pytest.raises(RoundLimitExceeded):
            run_execution(
                factory,
                n=4,
                num_channels=4,
                active_ids=[1],
                max_rounds=10,
                instrument=log,
            )
        assert log.info is not None
        assert log.summary is not None, "no terminal summary before the raise"
        assert log.summary.solved is False
        assert log.summary.solved_round is None
        assert log.summary.winner is None
        assert log.summary.rounds == 10
        assert log.summary.wall_time_s >= 0.0
        assert len(log.events) == 10

    def test_round_limit_registry_sink_stays_balanced(self):
        from repro.obs import RegistrySink

        def factory(ctx):
            def forever():
                while True:
                    yield listen(2)

            return forever()

        sink = RegistrySink()
        with pytest.raises(RoundLimitExceeded):
            run_execution(
                factory,
                n=4,
                num_channels=4,
                active_ids=[1],
                max_rounds=5,
                instrument=sink,
            )
        snapshot = sink.registry.snapshot()
        assert snapshot["counters"]["runs"] == 1.0
        assert snapshot["counters"].get("solved_runs", 0.0) == 0.0
        # The terminal summary folded in: the per-run histograms closed.
        assert snapshot["histograms"]["rounds_per_run"]["count"] == 1

    def test_mixed_lifetimes(self):
        factory = scripted({1: [listen(2)] * 5, 2: [listen(3)] * 2})
        result = run_execution(factory, n=4, num_channels=4, active_ids=[1, 2])
        assert result.rounds == 5
        assert len(factory.observations[1]) == 5
        assert len(factory.observations[2]) == 2


class TestWakeRounds:
    def test_late_wake(self):
        factory = scripted({1: [listen(2), listen(2)], 2: [transmit(2, "hi")]})
        run_execution(
            factory,
            n=4,
            num_channels=4,
            active_ids=[1, 2],
            wake_rounds={2: 2},
        )
        first, second = factory.observations[1]
        assert first.feedback is Feedback.SILENCE
        assert second.feedback is Feedback.MESSAGE

    def test_wake_round_observation_indices(self):
        factory = scripted({1: [listen(1), listen(1)]})
        run_execution(
            factory, n=4, num_channels=4, active_ids=[1], wake_rounds={1: 3}
        )
        rounds = [obs.round_index for obs in factory.observations[1]]
        assert rounds == [3, 4]

    def test_invalid_wake_round_rejected(self):
        factory = scripted({1: [listen(1)]})
        with pytest.raises(ConfigurationError):
            run_execution(
                factory, n=4, num_channels=4, active_ids=[1], wake_rounds={1: 0}
            )

    def test_wake_round_for_inactive_node_rejected(self):
        factory = scripted({1: [listen(1)]})
        with pytest.raises(ConfigurationError):
            run_execution(
                factory, n=4, num_channels=4, active_ids=[1], wake_rounds={2: 2}
            )


class TestValidation:
    def test_channel_out_of_range_rejected(self):
        factory = scripted({1: [transmit(5)]})
        with pytest.raises(ProtocolViolation):
            run_execution(factory, n=4, num_channels=4, active_ids=[1])

    def test_channel_zero_rejected(self):
        factory = scripted({1: [transmit(0)]})
        with pytest.raises(ProtocolViolation):
            run_execution(factory, n=4, num_channels=4, active_ids=[1])

    def test_non_action_yield_rejected(self):
        def factory(ctx):
            def bad():
                yield "not an action"

            return bad()

        with pytest.raises(ProtocolViolation):
            run_execution(factory, n=4, num_channels=4, active_ids=[1])

    def test_empty_activation_rejected(self):
        factory = scripted({})
        with pytest.raises(ConfigurationError):
            run_execution(factory, n=4, num_channels=4, active_ids=[])

    def test_activation_outside_range_rejected(self):
        factory = scripted({})
        with pytest.raises(ConfigurationError):
            run_execution(factory, n=4, num_channels=4, active_ids=[5])

    def test_bad_network_rejected(self):
        with pytest.raises(ConfigurationError):
            Network(n=0, num_channels=4)
        with pytest.raises(ConfigurationError):
            Network(n=4, num_channels=0)


class TestTraceRecording:
    def test_trace_rounds_recorded_when_enabled(self):
        factory = scripted({1: [transmit(2, "x")], 2: [listen(2)]})
        result = run_execution(
            factory, n=4, num_channels=4, active_ids=[1, 2], record_trace=True
        )
        assert len(result.trace.rounds) == 1
        record = result.trace.rounds[0]
        assert record.channels[2].transmitters == (1,)
        assert record.channels[2].receivers == (2,)
        assert record.channels[2].feedback is Feedback.MESSAGE
        assert record.channels[2].message == "x"

    def test_trace_rounds_skipped_when_disabled(self):
        factory = scripted({1: [transmit(2)]})
        result = run_execution(factory, n=4, num_channels=4, active_ids=[1])
        assert result.trace.rounds == []

    def test_marks_always_collected(self):
        def factory(ctx):
            def coroutine():
                ctx.mark("started", {"id": ctx.node_id})
                yield listen(2)
                ctx.mark("finished")

            return coroutine()

        result = run_execution(factory, n=4, num_channels=4, active_ids=[1, 2])
        started = result.trace.marks_with_label("started")
        assert {m.node_id for m in started} == {1, 2}
        assert result.trace.first_mark_round("started") == 1

    def test_determinism_across_runs(self):
        from repro import TwoActive
        from repro.sim import activate_pair

        def once():
            from repro.protocols import solve

            return solve(
                TwoActive(),
                n=1 << 10,
                num_channels=32,
                activation=activate_pair(1 << 10, seed=5),
                seed=5,
            )

        first, second = once(), once()
        assert first.rounds == second.rounds
        assert first.winner == second.winner
        assert first.solved_round == second.solved_round


class TestEngineObject:
    def test_engine_reusable_across_runs(self):
        engine = Engine(Network(n=4, num_channels=4), seed=1)
        factory = scripted({1: [transmit(1, "w")]})
        first = engine.run(factory, active_ids=[1])
        second = engine.run(scripted({1: [transmit(1, "w")]}), active_ids=[1])
        assert first.solved and second.solved

    def test_default_active_set_is_everyone(self):
        counts = []

        def factory(ctx):
            def coroutine():
                counts.append(ctx.node_id)
                return
                yield  # pragma: no cover

            return coroutine()

        engine = Engine(Network(n=6, num_channels=2))
        engine.run(factory)
        assert sorted(counts) == [1, 2, 3, 4, 5, 6]

    def test_invalid_max_rounds(self):
        engine = Engine(Network(n=2, num_channels=2))
        with pytest.raises(ConfigurationError):
            engine.run(scripted({1: [listen(1)]}), active_ids=[1], max_rounds=0)


class TestDefaultRoundBudget:
    """Regression: the budget log must be ``ceil(log2 n)``, not bit_length.

    ``n.bit_length()`` equals ``ceil(log2 n)`` everywhere except exact
    powers of two, where it overshoots by one and inflated the budget.
    """

    def test_power_of_two_uses_exact_log(self):
        from repro.sim import default_round_budget

        # n = 1024: log2 is exactly 10 (bit_length would say 11).
        assert default_round_budget(1024) == 4096 + 64 * 10 * 10
        assert default_round_budget(2) == 4096 + 64 * 1 * 1
        assert default_round_budget(4096) == 4096 + 64 * 12 * 12

    def test_non_powers_unchanged(self):
        from repro.sim import default_round_budget

        assert default_round_budget(1000) == 4096 + 64 * 10 * 10
        assert default_round_budget(1025) == 4096 + 64 * 11 * 11

    def test_small_n_floor(self):
        from repro.sim import default_round_budget

        # ceil(log2 1) = 0, floored to 1 so the budget is never degenerate.
        assert default_round_budget(1) == 4096 + 64
        assert default_round_budget(1) == default_round_budget(2)
