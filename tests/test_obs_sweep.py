"""Tests for profiled sweeps: serial cells and their process-parallel twin.

The contract under test is the one :class:`ParallelProfile` documents —
the per-trial metrics and every deterministic instrument in the merged
registry are identical whether the cell ran serially, in-process, or
sharded across worker processes. Only wall-clock observations may differ.
"""

import pytest

from repro.analysis.parallel import (
    registered_profiled_trials,
    run_cell_parallel_profiled,
)
from repro.analysis.sweep import ProfiledCellResult, run_cell_profiled
from repro.obs.profile import profiled_trial

PARAMS = {"protocol": "fnw-general", "n": 256, "C": 16, "active": 30}


def _serial(trials, master_seed):
    return run_cell_profiled(
        lambda seed: profiled_trial(seed, **PARAMS),
        trials=trials,
        master_seed=master_seed,
        params=PARAMS,
    )


def _deterministic_counters(registry):
    return registry.snapshot()["counters"]


class TestSerialProfiledCell:
    def test_cell_shape_and_timing(self):
        cell = _serial(trials=4, master_seed=9)
        assert isinstance(cell, ProfiledCellResult)
        assert len(cell.trials) == 4
        assert len(cell.trial_seconds) == 4
        assert all(seconds >= 0 for seconds in cell.trial_seconds)
        assert cell.wall_seconds == sum(cell.trial_seconds)
        assert cell.throughput() > 0

    def test_registry_aggregates_all_trials(self):
        cell = _serial(trials=4, master_seed=9)
        counters = _deterministic_counters(cell.registry)
        assert counters["runs"] == 4.0
        assert counters["rounds"] == sum(t["rounds"] for t in cell.trials)
        assert counters["solved_runs"] == sum(t["solved"] for t in cell.trials)

    def test_trials_validated(self):
        with pytest.raises(ValueError):
            _serial(trials=0, master_seed=0)


class TestParallelProfiledCell:
    def test_registered(self):
        assert "solve-profiled" in registered_profiled_trials()

    def test_unknown_trial_rejected(self):
        with pytest.raises(KeyError):
            run_cell_parallel_profiled("nope", {}, trials=2)

    def test_in_process_path_matches_serial(self):
        serial = _serial(trials=6, master_seed=9)
        parallel = run_cell_parallel_profiled(
            "solve-profiled", PARAMS, trials=6, master_seed=9, processes=1
        )
        assert parallel.cell.trials == serial.trials
        assert _deterministic_counters(parallel.registry) == _deterministic_counters(
            serial.registry
        )

    def test_pool_path_matches_serial(self):
        serial = _serial(trials=6, master_seed=9)
        try:
            parallel = run_cell_parallel_profiled(
                "solve-profiled", PARAMS, trials=6, master_seed=9, processes=2
            )
        except (OSError, PermissionError) as error:  # pragma: no cover
            pytest.skip(f"process pools unavailable here: {error}")
        assert parallel.cell.trials == serial.trials
        assert _deterministic_counters(parallel.registry) == _deterministic_counters(
            serial.registry
        )

    def test_worker_accounting(self):
        try:
            parallel = run_cell_parallel_profiled(
                "solve-profiled", PARAMS, trials=6, master_seed=9, processes=2
            )
        except (OSError, PermissionError) as error:  # pragma: no cover
            pytest.skip(f"process pools unavailable here: {error}")
        assert sum(stats.trials for stats in parallel.workers) == 6
        assert all(stats.seconds >= 0 for stats in parallel.workers)
        assert all(stats.throughput() >= 0 for stats in parallel.workers)
        assert parallel.wall_seconds > 0
        assert parallel.throughput() > 0

    def test_process_count_is_invisible_to_metrics(self):
        counters = []
        for processes in (1, 2, 3):
            try:
                profile = run_cell_parallel_profiled(
                    "solve-profiled",
                    PARAMS,
                    trials=5,
                    master_seed=4,
                    processes=processes,
                )
            except (OSError, PermissionError) as error:  # pragma: no cover
                pytest.skip(f"process pools unavailable here: {error}")
            counters.append(_deterministic_counters(profile.registry))
        assert counters[0] == counters[1] == counters[2]
