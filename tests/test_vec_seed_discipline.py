"""Seed discipline on the vectorized backend: reproducibility regressions.

The determinism contract (docs/determinism.md) extends to ``backend="vec"``:

* one ``(protocol, n, C, activation, seed)`` tuple produces the identical
  execution on every run, in both draw modes — exact per-node streams and
  the counter-based Philox batches the mega-scale path uses;
* a sweep's results are a function of its master seed alone — the same
  grid re-run through a ``processes >= 2`` pool is bitwise-identical to
  the serial run, with ``backend: "vec"`` in the cell parameters.
"""

import json

import pytest

pytest.importorskip("numpy")

from repro.analysis.parallel import run_cell_parallel
from repro.analysis.runner import SweepRunner
from repro.baselines import Decay
from repro.sim import activate_random, result_to_dict, vec


def _serialized(result):
    return json.dumps(result_to_dict(result), sort_keys=True)


def _run(n, active, seed, draws):
    return vec.run_protocol(
        Decay(),
        n=n,
        num_channels=1,
        activation=activate_random(n, active, seed=seed),
        seed=seed,
        stop_on_solve=False,
        max_rounds=2048,
        draws=draws,
    )


@pytest.mark.parametrize("draws", ["exact", "counter"])
@pytest.mark.parametrize("seed", [0, 11, 42])
def test_same_seed_same_execution(draws, seed):
    first = _run(256, 9, seed, draws)
    second = _run(256, 9, seed, draws)
    assert _serialized(first) == _serialized(second)


def test_counter_mode_is_reproducible_at_auto_threshold():
    """n = 5000 crosses the auto exact->counter switch; still deterministic."""
    first = _run(5000, 5000, 13, "auto")
    second = _run(5000, 5000, 13, "auto")
    assert _serialized(first) == _serialized(second)
    # And "auto" at this size really is the counter path.
    assert _serialized(first) == _serialized(_run(5000, 5000, 13, "counter"))


def _cells_data(cells):
    return [(dict(c.params), [dict(t) for t in c.trials]) for c in cells]


PARAMS = {"protocol": "decay", "n": 64, "C": 1, "active": 8, "backend": "vec"}


class TestSweepSeedDiscipline:
    def test_pool_size_does_not_change_vec_results(self):
        serial = run_cell_parallel("baseline", PARAMS, trials=6, master_seed=9,
                                   processes=1)
        pooled = run_cell_parallel("baseline", PARAMS, trials=6, master_seed=9,
                                   processes=2)
        assert _cells_data([serial]) == _cells_data([pooled])

    def test_vec_cells_match_coroutine_cells_at_small_n(self):
        """Exact-draw parity carries through the whole sweep stack."""
        coroutine_params = dict(PARAMS, backend="coroutine")
        vec_cell = run_cell_parallel("baseline", PARAMS, trials=6, master_seed=9)
        coroutine_cell = run_cell_parallel(
            "baseline", coroutine_params, trials=6, master_seed=9
        )
        assert [dict(t) for t in vec_cell.trials] == [
            dict(t) for t in coroutine_cell.trials
        ]

    def test_sweep_runner_grid_is_a_function_of_the_master_seed(self):
        grid = [
            dict(PARAMS, active=4),
            dict(PARAMS, active=12),
        ]
        with SweepRunner(processes=2) as first, SweepRunner(processes=1) as second:
            a = first.run_grid("baseline", grid, trials=4, master_seed=21)
            b = second.run_grid("baseline", grid, trials=4, master_seed=21)
        assert _cells_data(a.cells) == _cells_data(b.cells)

    def test_different_master_seeds_differ(self):
        a = run_cell_parallel("baseline", PARAMS, trials=6, master_seed=9)
        b = run_cell_parallel("baseline", PARAMS, trials=6, master_seed=10)
        assert _cells_data([a]) != _cells_data([b])
