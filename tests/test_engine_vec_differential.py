"""Differential tests: the vectorized backend agrees with the coroutine engine.

``repro.sim.vec`` executes lowered :class:`~repro.protocols.ir.RoundProgram`
descriptions column-wise over the whole population.  Agreement with the
coroutine engine is proved at two strengths, matching the draw modes
documented in :mod:`repro.sim.vec`:

* **bitwise** — in exact-draw mode (the default at small n) the vec backend
  consumes the same per-node RNG streams in the same order as the coroutine
  engine, so over a grid of protocols × seeds × collision-detection modes
  the serialized results must match byte for byte — same ``solved`` /
  ``winner`` / ``rounds`` / marks, and the same ``RoundLimitExceeded`` on
  saturated instances.  The instrumented runs must also produce identical
  metrics registries (modulo wall-time histograms).
* **distributional** — in counter-draw mode (the mega-scale default) the
  streams differ by construction, so agreement is statistical: two-sample
  Kolmogorov-Smirnov on solved-round distributions and a chi-square
  homogeneity test on Reduce survivor counts, over hundreds of seeds.

A Hypothesis suite at the bottom generates random well-formed round
programs and checks bitwise agreement on each, so the equivalence covers
the IR's full reachable surface, not just the three shipped lowerings.

The ``filterwarnings`` marks turn :class:`~repro.sim.vec.VecFallbackWarning`
into an error: every "vec" run in this file must actually be served by the
vectorized backend, never silently fall back.
"""

import json
import math
from bisect import bisect_right

import pytest

pytest.importorskip("numpy")

from hypothesis import given, settings, strategies as st

from repro import solve
from repro.baselines import Decay, SlottedAloha
from repro.core import Reduce
from repro.obs import RegistrySink
from repro.protocols import ProgramProtocol, RoundProgram, StateRule, Transition
from repro.sim import (
    CollisionDetection,
    Network,
    RoundLimitExceeded,
    activate_random,
    result_to_dict,
    staggered,
)
from repro.sim import vec
from repro.sim.feedback import Feedback

SEEDS = (0, 1, 2)

MODES = (
    CollisionDetection.STRONG,
    CollisionDetection.RECEIVER_ONLY,
    CollisionDetection.NONE,
)

#: (name, protocol factory, solve kwargs factory).  All instances stay at
#: n <= 4096 so the vec backend's "auto" draw mode selects exact per-node
#: streams — the precondition for bitwise agreement.  The saturated ALOHA
#: case deliberately exhausts its budget: the ``RoundLimitExceeded``
#: message must match too.
CASES = [
    (
        "decay-dense",
        Decay,
        lambda seed: dict(
            n=64,
            num_channels=1,
            activation=activate_random(64, 8, seed=seed),
            stop_on_solve=False,
            max_rounds=512,
        ),
    ),
    (
        "decay-staggered",
        Decay,
        lambda seed: dict(
            n=64,
            num_channels=1,
            activation=staggered(
                activate_random(64, 6, seed=seed), max_delay=9, seed=seed
            ),
            max_rounds=512,
        ),
    ),
    (
        "aloha",
        SlottedAloha,
        lambda seed: dict(
            n=32,
            num_channels=2,
            activation=activate_random(32, 5, seed=seed),
            max_rounds=4096,
        ),
    ),
    (
        "aloha-saturated",
        lambda: SlottedAloha(probability=0.6),
        lambda seed: dict(
            n=48,
            num_channels=1,
            activation=activate_random(48, 16, seed=seed),
            stop_on_solve=False,
            max_rounds=64,
        ),
    ),
    (
        "reduce-dense",
        Reduce,
        lambda seed: dict(
            n=64,
            num_channels=1,
            activation=activate_random(64, 12, seed=seed),
            stop_on_solve=False,
            max_rounds=512,
        ),
    ),
    (
        "reduce-staggered",
        Reduce,
        lambda seed: dict(
            n=64,
            num_channels=1,
            activation=staggered(
                activate_random(64, 10, seed=seed), max_delay=5, seed=seed
            ),
            stop_on_solve=False,
            max_rounds=512,
        ),
    ),
]


def _outcome(factory, kwargs, seed, mode, backend):
    """Terminal outcome of a run: serialized result or round-limit details."""
    try:
        result = solve(
            factory(), seed=seed, collision_detection=mode, backend=backend, **kwargs
        )
    except RoundLimitExceeded as exc:
        return ("round-limit", str(exc))
    return ("result", json.dumps(result_to_dict(result), sort_keys=True))


@pytest.mark.filterwarnings("error::repro.sim.vec.VecFallbackWarning")
@pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name,factory,make_kwargs", CASES, ids=[c[0] for c in CASES])
def test_vec_backend_is_bitwise_identical(name, factory, make_kwargs, seed, mode):
    kwargs = make_kwargs(seed)
    vec_outcome = _outcome(factory, kwargs, seed, mode, "vec")
    coroutine_outcome = _outcome(factory, kwargs, seed, mode, "coroutine")
    assert vec_outcome == coroutine_outcome


def _canonical_registry(registry):
    """Registry dump with the (nondeterministic) wall-time histograms removed."""
    payload = registry.to_dict()
    payload.get("histograms", {}).pop("round_wall_time_s", None)
    payload.get("histograms", {}).pop("run_wall_time_s", None)
    return json.dumps(payload, sort_keys=True)


@pytest.mark.filterwarnings("error::repro.sim.vec.VecFallbackWarning")
@pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
@pytest.mark.parametrize("seed", SEEDS)
def test_instrumented_vec_run_matches_registry(seed, mode):
    """Round events and terminal RunSummary metrics agree across backends."""
    registries = {}
    for backend in ("vec", "coroutine"):
        sink = RegistrySink()
        solve(
            Decay(),
            n=64,
            num_channels=1,
            activation=activate_random(64, 8, seed=seed),
            seed=seed,
            collision_detection=mode,
            stop_on_solve=False,
            max_rounds=512,
            instrument=sink,
            backend=backend,
        )
        registries[backend] = sink.registry
    assert _canonical_registry(registries["vec"]) == _canonical_registry(
        registries["coroutine"]
    )


# ------------------------------------------- IR interpreter faithfulness
#
# The lowered RoundProgram run through the reference interpreter
# (ProgramProtocol, coroutine engine) must reproduce the hand-written
# protocol it was lowered from — this is what licenses comparing the vec
# backend against the *native* protocols above.


@pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name,factory,make_kwargs", CASES, ids=[c[0] for c in CASES])
def test_lowered_program_matches_native_protocol(name, factory, make_kwargs, seed, mode):
    kwargs = make_kwargs(seed)
    network = Network(
        n=kwargs["n"], num_channels=kwargs["num_channels"], collision_detection=mode
    )
    program = factory().to_round_program(network)
    native = _outcome(factory, kwargs, seed, mode, "coroutine")
    interpreted = _outcome(lambda: ProgramProtocol(program), kwargs, seed, mode, "coroutine")
    assert interpreted == native


# --------------------------------------------- distributional agreement
#
# Counter-mode draws (the mega-scale default) use one Philox batch per
# participating round instead of per-node streams, so vec and coroutine
# executions of one seed legitimately differ.  Agreement is statistical:
# same distribution over many seeds.

_DIST_SEEDS = range(200)

#: Two-sample KS critical value at alpha = 0.001 for two samples of 200:
#: c(alpha) * sqrt((n + m) / (n * m)) with c(0.001) = 1.949.
_KS_CRITICAL = 1.949 * math.sqrt(2 / len(_DIST_SEEDS))

#: Chi-square critical values at alpha = 0.001, indexed by degrees of freedom.
_CHI2_CRITICAL = {
    1: 10.83, 2: 13.82, 3: 16.27, 4: 18.47, 5: 20.52, 6: 22.46,
    7: 24.32, 8: 26.12, 9: 27.88, 10: 29.59, 11: 31.26, 12: 32.91,
}


def _ks_statistic(a, b):
    a, b = sorted(a), sorted(b)
    points = sorted(set(a) | set(b))
    return max(
        abs(bisect_right(a, v) / len(a) - bisect_right(b, v) / len(b))
        for v in points
    )


def _chi_square_homogeneity(a, b):
    """(statistic, df) for two samples of small non-negative integers.

    Categories are pooled greedily so every expected cell count is >= 5,
    the textbook validity floor for the chi-square approximation.
    """
    from collections import Counter

    counts_a, counts_b = Counter(a), Counter(b)
    categories = sorted(set(counts_a) | set(counts_b))
    # Greedy pooling: merge adjacent categories until each pooled bucket
    # holds >= 10 observations overall (>= 5 expected per sample).
    buckets = []
    current = []
    pooled = 0
    for value in categories:
        current.append(value)
        pooled += counts_a[value] + counts_b[value]
        if pooled >= 10:
            buckets.append(tuple(current))
            current, pooled = [], 0
    if current:
        if buckets:
            buckets[-1] = buckets[-1] + tuple(current)
        else:
            buckets.append(tuple(current))
    if len(buckets) < 2:
        return 0.0, 1  # everything in one bucket: distributions identical
    total_a, total_b = len(a), len(b)
    statistic = 0.0
    for bucket in buckets:
        observed_a = sum(counts_a[v] for v in bucket)
        observed_b = sum(counts_b[v] for v in bucket)
        pooled = observed_a + observed_b
        expected_a = pooled * total_a / (total_a + total_b)
        expected_b = pooled * total_b / (total_a + total_b)
        statistic += (observed_a - expected_a) ** 2 / expected_a
        statistic += (observed_b - expected_b) ** 2 / expected_b
    return statistic, len(buckets) - 1


def _solved_rounds(protocol_factory, *, n, active, num_channels, max_rounds, backend):
    rounds = []
    for seed in _DIST_SEEDS:
        activation = activate_random(n, active, seed=seed)
        try:
            if backend == "vec":
                result = vec.run_protocol(
                    protocol_factory(),
                    n=n,
                    num_channels=num_channels,
                    activation=activation,
                    seed=seed,
                    max_rounds=max_rounds,
                    draws="counter",
                )
            else:
                result = solve(
                    protocol_factory(),
                    n=n,
                    num_channels=num_channels,
                    activation=activation,
                    seed=seed,
                    max_rounds=max_rounds,
                )
        except RoundLimitExceeded:
            rounds.append(max_rounds + 1)
            continue
        rounds.append(result.solved_round if result.solved else max_rounds + 1)
    return rounds


@pytest.mark.parametrize(
    "name,factory,active",
    [("decay", Decay, 8), ("aloha", lambda: SlottedAloha(probability=0.25), 6)],
    ids=["decay", "aloha"],
)
def test_counter_draws_match_distribution(name, factory, active):
    """KS test: counter-mode solved rounds are distributed like coroutine's."""
    kwargs = dict(n=64, active=active, num_channels=1, max_rounds=2048)
    vec_rounds = _solved_rounds(factory, backend="vec", **kwargs)
    coroutine_rounds = _solved_rounds(factory, backend="coroutine", **kwargs)
    statistic = _ks_statistic(vec_rounds, coroutine_rounds)
    assert statistic < _KS_CRITICAL, (
        f"{name}: KS statistic {statistic:.4f} >= {_KS_CRITICAL:.4f} "
        f"(alpha = 0.001) — counter-draw distribution drifted"
    )


def test_counter_draws_match_reduce_survivors():
    """Chi-square: Reduce survivor counts are distributed like coroutine's."""

    def survivors(backend):
        counts = []
        for seed in _DIST_SEEDS:
            activation = activate_random(64, 12, seed=seed)
            common = dict(
                n=64,
                num_channels=1,
                activation=activation,
                seed=seed,
                stop_on_solve=False,
                max_rounds=512,
            )
            if backend == "vec":
                result = vec.run_protocol(Reduce(), draws="counter", **common)
            else:
                result = solve(Reduce(), **common)
            counts.append(len(result.trace.marks_with_label("reduce:survived")))
        return counts

    statistic, df = _chi_square_homogeneity(survivors("vec"), survivors("coroutine"))
    critical = _CHI2_CRITICAL[min(df, max(_CHI2_CRITICAL))]
    assert statistic < critical, (
        f"chi-square {statistic:.2f} >= {critical:.2f} at df={df} "
        f"(alpha = 0.001) — survivor distribution drifted"
    )


# ------------------------------------------------ random-program fuzzing
#
# Random well-formed programs, bitwise-compared across backends via the
# ProgramProtocol reference interpreter.  Probabilities come from a small
# grid: the draw discipline makes equality exact, so any probability works,
# but a coarse grid hits the 0/1 edges often.

_PROBS = st.sampled_from([0.0, 0.25, 0.5, 0.75, 1.0])


def _transitions(num_states):
    return st.builds(
        Transition,
        next_state=st.one_of(st.none(), st.integers(0, num_states - 1)),
        mark=st.sampled_from([None, "m1", "m2"]),
        mark_node_id=st.booleans(),
    )


def _tables(num_states):
    return st.fixed_dictionaries({f: _transitions(num_states) for f in Feedback})


def _state_rules(num_states, schedule_length):
    return st.builds(
        StateRule,
        channel=st.integers(1, 2),
        probabilities=st.tuples(*[_PROBS] * schedule_length),
        on_transmit=_tables(num_states),
        on_listen=_tables(num_states),
        on_idle=st.one_of(st.none(), _transitions(num_states)),
        on_end=st.one_of(
            st.none(),
            st.builds(
                Transition,
                next_state=st.none(),
                mark=st.sampled_from([None, "end"]),
                mark_node_id=st.booleans(),
            ),
        ),
        idle_instead_of_listen=st.booleans(),
    )


@st.composite
def _programs(draw):
    num_states = draw(st.integers(1, 3))
    schedule_length = draw(st.integers(1, 3))
    return RoundProgram(
        name="fuzz",
        schedule_length=schedule_length,
        cycle=draw(st.booleans()),
        states=tuple(
            draw(_state_rules(num_states, schedule_length))
            for _ in range(num_states)
        ),
        initial_state=draw(st.integers(0, num_states - 1)),
    )


@pytest.mark.filterwarnings("error::repro.sim.vec.VecFallbackWarning")
@settings(max_examples=60, deadline=None)
@given(
    program=_programs(),
    seed=st.integers(0, 1000),
    mode=st.sampled_from(MODES),
    stop_on_solve=st.booleans(),
)
def test_random_programs_agree_across_backends(program, seed, mode, stop_on_solve):
    kwargs = dict(
        n=6,
        num_channels=2,
        max_rounds=32,
        stop_on_solve=stop_on_solve,
    )
    vec_outcome = _outcome(lambda: ProgramProtocol(program), kwargs, seed, mode, "vec")
    coroutine_outcome = _outcome(
        lambda: ProgramProtocol(program), kwargs, seed, mode, "coroutine"
    )
    assert vec_outcome == coroutine_outcome
