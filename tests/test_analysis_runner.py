"""Differential, resilience, and checkpoint tests for the sweep runner.

The acceptance bar for :mod:`repro.analysis.runner` is differential: a grid
through the shared pool must be bitwise-identical to a serial
:func:`repro.analysis.sweep.run_sweep`, an interrupted-then-resumed sweep
must equal an uninterrupted one, and a raising trial must become a
:class:`TrialFailure` without aborting the pool or the sweep.
"""

import json
import multiprocessing
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.parallel import (
    register_trial,
    resolve_processes,
    run_cell_parallel,
    run_cell_parallel_profiled,
)
from repro.analysis.runner import (
    CheckpointStore,
    SweepRunner,
    canonical_params,
    checkpoint_key,
    format_failures,
    run_sweep_parallel,
)
from repro.analysis.sweep import (
    CellResult,
    SweepResult,
    TrialFailure,
    grid_product,
    run_cell,
    run_sweep,
)
from repro.experiments.common import two_active_trial
from repro.obs.metrics import MetricsRegistry
from repro.sim.serialize import (
    checkpoint_record_from_dict,
    checkpoint_record_to_dict,
)

GRID = grid_product(n=[32, 64], C=[2, 4])
TRIALS = 5
MASTER_SEED = 3


@register_trial("runner-test-flaky")
def flaky_trial(seed, n):
    """A deterministic sometimes-raising trial (keyed on the seed)."""
    if seed % 3 == 0:
        raise RuntimeError(f"deliberate failure for seed {seed}")
    return {"rounds": float(seed % 7 + 1), "solved": 1.0, "n": float(n)}


def serial_reference(grid=GRID, trials=TRIALS, master_seed=MASTER_SEED):
    def make(params):
        return lambda seed: two_active_trial(params["n"], params["C"], seed)

    return run_sweep(grid, make, trials=trials, master_seed=master_seed)


def cells_data(cells):
    """Cells flattened to comparable plain data (params + ordered trials)."""
    return [(dict(c.params), [dict(t) for t in c.trials]) for c in cells]


class TestGridDifferential:
    def test_in_process_runner_matches_serial(self):
        with SweepRunner(processes=1) as runner:
            sweep = runner.run_grid(
                "two-active", GRID, trials=TRIALS, master_seed=MASTER_SEED
            )
        assert cells_data(sweep.cells) == cells_data(serial_reference().cells)

    def test_shared_pool_matches_serial(self):
        with SweepRunner(processes=2) as runner:
            sweep = runner.run_grid(
                "two-active", GRID, trials=TRIALS, master_seed=MASTER_SEED
            )
        assert cells_data(sweep.cells) == cells_data(serial_reference().cells)

    def test_results_invariant_under_pool_size(self):
        with SweepRunner(processes=2) as two, SweepRunner(processes=3) as three:
            a = two.run_grid("two-active", GRID, trials=TRIALS, master_seed=MASTER_SEED)
            b = three.run_grid(
                "two-active", GRID, trials=TRIALS, master_seed=MASTER_SEED
            )
        assert cells_data(a.cells) == cells_data(b.cells)

    def test_chunk_size_does_not_change_results(self):
        with SweepRunner(processes=2, chunk_size=1) as runner:
            sweep = runner.run_grid(
                "two-active", GRID, trials=TRIALS, master_seed=MASTER_SEED
            )
        assert cells_data(sweep.cells) == cells_data(serial_reference().cells)

    def test_run_sweep_delegates_to_runner(self):
        with SweepRunner(processes=1) as runner:
            sweep = run_sweep(
                GRID, "two-active", trials=TRIALS, master_seed=MASTER_SEED,
                runner=runner,
            )
        assert cells_data(sweep.cells) == cells_data(serial_reference().cells)

    def test_run_sweep_with_runner_rejects_callables(self):
        with SweepRunner(processes=1) as runner:
            with pytest.raises(TypeError):
                run_sweep(GRID, lambda params: None, trials=2, runner=runner)

    def test_run_sweep_parallel_convenience(self):
        sweep = run_sweep_parallel(
            "two-active", GRID, trials=TRIALS, master_seed=MASTER_SEED, processes=1
        )
        assert cells_data(sweep.cells) == cells_data(serial_reference().cells)

    def test_runner_usable_again_after_close(self):
        runner = SweepRunner(processes=2)
        runner.run_cell("two-active", GRID[0], trials=2, master_seed=1)
        runner.close()
        cell = runner.run_cell("two-active", GRID[0], trials=2, master_seed=1)
        runner.close()
        assert len(cell.trials) == 2


class TestProgressAndMetrics:
    def test_counters_and_gauge(self):
        metrics = MetricsRegistry()
        with SweepRunner(processes=1, metrics=metrics) as runner:
            runner.run_grid("two-active", GRID, trials=TRIALS, master_seed=MASTER_SEED)
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["sweep/trials_executed"] == len(GRID) * TRIALS
        assert snapshot["counters"]["sweep/cells_completed"] == len(GRID)
        assert "sweep/trials_failed" not in snapshot["counters"]
        assert snapshot["gauges"]["sweep/grid_cells"]["value"] == len(GRID)

    def test_progress_callback_is_monotone_and_complete(self):
        calls = []
        with SweepRunner(processes=1, progress=lambda d, t: calls.append((d, t))) as r:
            r.run_grid("two-active", GRID, trials=TRIALS, master_seed=MASTER_SEED)
        total = len(GRID) * TRIALS
        assert [done for done, _ in calls] == list(range(1, total + 1))
        assert all(t == total for _, t in calls)


class TestContainment:
    def test_raising_trial_becomes_trial_failure(self):
        with SweepRunner(processes=1) as runner:
            cell = runner.run_cell(
                "runner-test-flaky", {"n": 8}, trials=12, master_seed=0
            )
        assert cell.failures, "the flaky trial never raised — bad fixture seeds"
        assert len(cell.trials) + len(cell.failures) == 12
        for failure in cell.failures:
            assert isinstance(failure, TrialFailure)
            assert failure.error == "RuntimeError"
            assert "deliberate failure" in failure.message
            assert "RuntimeError" in failure.traceback
        # rate() denominates over attempted trials, not just completed ones.
        assert cell.rate("solved") == len(cell.trials) / 12
        assert cell.failure_rate() == len(cell.failures) / 12

    def test_pool_survives_failures(self):
        with SweepRunner(processes=2) as runner:
            flaky = runner.run_cell(
                "runner-test-flaky", {"n": 8}, trials=12, master_seed=0
            )
            assert flaky.failures
            clean = runner.run_cell(
                "two-active", dict(GRID[0]), trials=TRIALS, master_seed=MASTER_SEED
            )
        reference = run_cell(
            lambda seed: two_active_trial(GRID[0]["n"], GRID[0]["C"], seed),
            trials=TRIALS,
            master_seed=MASTER_SEED,
            params=GRID[0],
        )
        assert cells_data([clean]) == cells_data([reference])

    def test_failure_seeds_are_deterministic(self):
        def failed_seeds():
            with SweepRunner(processes=1) as runner:
                cell = runner.run_cell(
                    "runner-test-flaky", {"n": 8}, trials=12, master_seed=0
                )
            return [failure.seed for failure in cell.failures]

        assert failed_seeds() == failed_seeds()

    def test_unknown_trial_raises_before_scheduling(self):
        with SweepRunner(processes=1) as runner:
            with pytest.raises(KeyError):
                runner.run_cell("no-such-trial", {}, trials=2)

    def test_format_failures_truncates(self):
        cell = CellResult(params={"n": 8})
        for seed in range(7):
            cell.failures.append(
                TrialFailure(seed=seed, error="RuntimeError", message="x")
            )
        lines = format_failures([cell], limit=5)
        assert len(lines) == 6
        assert lines[-1] == "... and 2 more failure(s)"


class TestCheckpointResume:
    def run_checkpointed(self, tmp_path, **kwargs):
        metrics = MetricsRegistry()
        with SweepRunner(
            checkpoint_dir=str(tmp_path / "ckpt"), metrics=metrics, **kwargs
        ) as runner:
            sweep = runner.run_grid(
                "two-active", GRID, trials=TRIALS, master_seed=MASTER_SEED
            )
        return sweep, metrics.snapshot()["counters"]

    def test_interrupted_then_resumed_equals_uninterrupted(self, tmp_path):
        """The golden resume test: kill mid-sweep, resume, compare."""
        self.run_checkpointed(tmp_path, processes=1)
        store = CheckpointStore(str(tmp_path / "ckpt"))
        path = store.path_for("two-active", MASTER_SEED)
        lines = open(path, encoding="utf-8").read().splitlines()
        assert len(lines) == len(GRID) * TRIALS
        # Simulate a kill mid-grid: keep roughly the first half of the
        # records, with the last surviving line torn mid-write.
        keep = lines[: len(lines) // 2]
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(keep) + "\n")
            handle.write(lines[len(lines) // 2][: 20])  # torn tail
        # The torn tail is now *visible*: the resuming load warns about it.
        with pytest.warns(RuntimeWarning, match="skipped 1 invalid line"):
            resumed, counters = self.run_checkpointed(tmp_path, processes=1)
        assert cells_data(resumed.cells) == cells_data(serial_reference().cells)
        assert counters["sweep/trials_cached"] == len(keep)
        assert counters["sweep/trials_executed"] == len(lines) - len(keep)

    def test_rerun_is_pure_cache_hit_and_never_forks(self, tmp_path):
        self.run_checkpointed(tmp_path, processes=1)
        metrics = MetricsRegistry()
        with SweepRunner(
            checkpoint_dir=str(tmp_path / "ckpt"), processes=2, metrics=metrics
        ) as runner:
            sweep = runner.run_grid(
                "two-active", GRID, trials=TRIALS, master_seed=MASTER_SEED
            )
            assert runner._pool is None, "a fully-cached sweep must not fork"
        counters = metrics.snapshot()["counters"]
        assert "sweep/trials_executed" not in counters
        assert counters["sweep/trials_cached"] == len(GRID) * TRIALS
        assert cells_data(sweep.cells) == cells_data(serial_reference().cells)

    def test_resume_false_ignores_but_keeps_store(self, tmp_path):
        self.run_checkpointed(tmp_path, processes=1)
        _, counters = self.run_checkpointed(tmp_path, processes=1, resume=False)
        assert counters["sweep/trials_executed"] == len(GRID) * TRIALS
        store = CheckpointStore(str(tmp_path / "ckpt"))
        # Both runs appended: the store now holds duplicate keys on disk but
        # load() deduplicates (last record wins).
        assert len(store.load("two-active", MASTER_SEED)) == len(GRID) * TRIALS

    def test_failed_trials_are_cached_and_retryable(self, tmp_path):
        directory = str(tmp_path / "ckpt")
        with SweepRunner(checkpoint_dir=directory, processes=1) as runner:
            first = runner.run_cell(
                "runner-test-flaky", {"n": 8}, trials=12, master_seed=0
            )
        assert first.failures
        metrics = MetricsRegistry()
        with SweepRunner(
            checkpoint_dir=directory, processes=1, metrics=metrics
        ) as runner:
            second = runner.run_cell(
                "runner-test-flaky", {"n": 8}, trials=12, master_seed=0
            )
        counters = metrics.snapshot()["counters"]
        assert "sweep/trials_executed" not in counters
        assert counters["sweep/trials_failed"] == len(first.failures)
        assert [f.seed for f in second.failures] == [f.seed for f in first.failures]
        metrics = MetricsRegistry()
        with SweepRunner(
            checkpoint_dir=directory, processes=1, retry_failures=True,
            metrics=metrics,
        ) as runner:
            third = runner.run_cell(
                "runner-test-flaky", {"n": 8}, trials=12, master_seed=0
            )
        counters = metrics.snapshot()["counters"]
        # Failed seeds re-ran (and failed again — the trial is deterministic);
        # completed seeds stayed cached.
        assert counters["sweep/trials_executed"] == len(first.failures)
        assert counters["sweep/trials_cached"] == 12 - len(first.failures)
        assert cells_data([third]) == cells_data([first])

    def test_store_isolates_master_seeds(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        assert store.path_for("two-active", 1) != store.path_for("two-active", 2)
        assert store.path_for("a/b c", 1).endswith("a_b_c-s1.jsonl")

    def test_garbage_lines_are_skipped(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        path = store.path_for("two-active", 0)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("not json\n")
            handle.write(json.dumps({"format_version": 999}) + "\n")
            handle.write("\n")
            record = checkpoint_record_to_dict(
                trial="two-active", params={"n": 32, "C": 2}, master_seed=0,
                stream=0, seed=17, metrics={"rounds": 4.0},
            )
            handle.write(json.dumps(record) + "\n")
        with pytest.warns(RuntimeWarning, match="skipped 2 invalid line"):
            loaded = store.load("two-active", 0)
        assert list(loaded.values()) == [record]


class TestProcessValidation:
    """Satellite: ``processes`` validation and single-CPU fallback."""

    @pytest.mark.parametrize("bad", [0, -1, -8])
    def test_rejected_everywhere(self, bad):
        with pytest.raises(ValueError):
            SweepRunner(processes=bad)
        with pytest.raises(ValueError):
            run_cell_parallel("two-active", dict(GRID[0]), trials=2, processes=bad)
        with pytest.raises(ValueError):
            run_cell_parallel_profiled(
                "solve-profiled", dict(GRID[0]), trials=2, processes=bad
            )

    @pytest.mark.parametrize("detected", [None, 1])
    def test_unknown_or_single_cpu_falls_back_in_process(self, monkeypatch, detected):
        monkeypatch.setattr(os, "cpu_count", lambda: detected)
        assert resolve_processes(None) == 1
        with SweepRunner() as runner:
            assert runner.processes == 1
            runner.run_cell("two-active", dict(GRID[0]), trials=2, master_seed=1)
            assert runner._pool is None

    def test_multi_cpu_detection_used(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 6)
        assert resolve_processes(None) == 6
        assert resolve_processes(3) == 3


@pytest.mark.skipif(
    "spawn" not in multiprocessing.get_all_start_methods(),
    reason="spawn start method unavailable on this platform",
)
class TestSpawnStartMethod:
    """Satellite: registry-by-name trials must survive spawn workers.

    Spawn workers import the function's defining module instead of
    inheriting the parent's memory, so only trials registered at import
    time of a real module (here ``repro.analysis.parallel``) resolve.
    """

    def test_run_cell_parallel_under_spawn(self):
        params = {"n": 32, "C": 4}
        cell = run_cell_parallel(
            "two-active", params, trials=3, master_seed=2, processes=2,
            start_method="spawn",
        )
        reference = run_cell(
            lambda seed: two_active_trial(params["n"], params["C"], seed),
            trials=3,
            master_seed=2,
            params=params,
        )
        assert cells_data([cell]) == cells_data([reference])

    def test_runner_under_spawn(self):
        grid = [{"n": 32, "C": 4}]
        with SweepRunner(processes=2, start_method="spawn") as runner:
            sweep = runner.run_grid("two-active", grid, trials=3, master_seed=2)
        assert cells_data(sweep.cells) == cells_data(
            serial_reference(grid=grid, trials=3, master_seed=2).cells
        )


class TestCellMatching:
    """Satellite: type-aware ``SweepResult.cell`` parameter matching."""

    @staticmethod
    def build(params_list):
        sweep = SweepResult()
        for params in params_list:
            sweep.cells.append(CellResult(params=dict(params)))
        return sweep

    def test_bool_axis_never_aliases_int_axis(self):
        sweep = self.build([{"flag": True, "n": 4}, {"flag": 1, "n": 4}])
        assert sweep.cell(flag=True).params["flag"] is True
        assert sweep.cell(flag=1).params["flag"] == 1
        assert not isinstance(sweep.cell(flag=1).params["flag"], bool)

    def test_int_and_float_cross_match_numerically(self):
        sweep = self.build([{"density": 1, "n": 4}, {"density": 0.5, "n": 4}])
        assert sweep.cell(density=1.0).params["density"] == 1
        assert sweep.cell(density=0.5).params["n"] == 4

    def test_no_match_raises(self):
        sweep = self.build([{"flag": 1}])
        with pytest.raises(KeyError):
            sweep.cell(flag=True)

    def test_checkpoint_key_is_type_faithful(self):
        keys = {
            checkpoint_key("t", {"x": value}, 0, 0, 1)
            for value in (True, 1, 1.0, "1")
        }
        assert len(keys) == 4
        assert canonical_params({"b": 2, "a": 1}) == canonical_params({"a": 1, "b": 2})


_PARAM_VALUES = (
    st.booleans()
    | st.integers(min_value=-(10**9), max_value=10**9)
    | st.floats(allow_nan=False, allow_infinity=False, width=32)
    | st.text(max_size=8)
)


class TestCheckpointRecordProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        params=st.dictionaries(st.text(min_size=1, max_size=6), _PARAM_VALUES, max_size=4),
        metrics=st.dictionaries(
            st.text(min_size=1, max_size=8),
            st.floats(allow_nan=False, allow_infinity=False, width=32),
            max_size=4,
        ),
        seed=st.integers(min_value=0, max_value=2**63 - 1),
        stream=st.integers(min_value=0, max_value=1000),
    )
    def test_ok_record_round_trips_through_json(self, params, metrics, seed, stream):
        record = checkpoint_record_to_dict(
            trial="probe", params=params, master_seed=7, stream=stream,
            seed=seed, metrics=metrics,
        )
        assert checkpoint_record_from_dict(json.loads(json.dumps(record))) == record

    @settings(max_examples=30, deadline=None)
    @given(
        message=st.text(max_size=40),
        error=st.text(min_size=1, max_size=20),
    )
    def test_failure_record_round_trips_through_json(self, message, error):
        record = checkpoint_record_to_dict(
            trial="probe", params={"n": 2}, master_seed=0, stream=0, seed=5,
            failure={"error": error, "message": message, "traceback": ""},
        )
        assert checkpoint_record_from_dict(json.loads(json.dumps(record))) == record

    def test_record_requires_exactly_one_payload(self):
        with pytest.raises(ValueError):
            checkpoint_record_to_dict(
                trial="probe", params={}, master_seed=0, stream=0, seed=1
            )
        with pytest.raises(ValueError):
            checkpoint_record_to_dict(
                trial="probe", params={}, master_seed=0, stream=0, seed=1,
                metrics={"rounds": 1.0},
                failure={"error": "E", "message": "m", "traceback": ""},
            )


class TestProfiledOnSharedPool:
    def test_profiled_cell_matches_per_call_pool(self):
        params = {"protocol": "two-active", "n": 32, "C": 4, "active": 2}
        with SweepRunner(processes=2) as runner:
            shared = runner.run_cell_profiled(
                "solve-profiled", params, trials=3, master_seed=2
            )
        per_call = run_cell_parallel_profiled(
            "solve-profiled", params, trials=3, master_seed=2, processes=2
        )
        assert [dict(t) for t in shared.cell.trials] == [
            dict(t) for t in per_call.cell.trials
        ]
        assert (
            shared.registry.snapshot()["counters"]
            == per_call.registry.snapshot()["counters"]
        )
