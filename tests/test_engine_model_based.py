"""Model-based property test of the engine.

Hypothesis generates arbitrary per-node action scripts; we re-derive every
observation and the solve round from the scripts with an independent
10-line reference model and demand the engine agrees exactly.  This is the
strongest guarantee we can give that the substrate implements Section 3's
model and nothing else.
"""

from hypothesis import given, settings, strategies as st

from repro.sim import Action, Feedback, run_execution

MAX_NODES = 5
MAX_ROUNDS = 6
MAX_CHANNELS = 4


def action_strategy():
    return st.one_of(
        st.just(Action(channel=None)),
        st.builds(
            Action,
            channel=st.integers(min_value=1, max_value=MAX_CHANNELS),
            transmit=st.booleans(),
            message=st.integers(min_value=0, max_value=9),
        ),
    )


def scripts_strategy():
    return st.dictionaries(
        keys=st.integers(min_value=1, max_value=MAX_NODES),
        values=st.lists(action_strategy(), min_size=0, max_size=MAX_ROUNDS),
        min_size=1,
        max_size=MAX_NODES,
    )


def reference_model(scripts):
    """Independently compute per-node observations and the solve round."""
    observations = {nid: [] for nid in scripts}
    solve_round = None
    longest = max((len(s) for s in scripts.values()), default=0)
    for round_index in range(longest):
        transmitters = {}
        payload = {}
        for nid, script in scripts.items():
            if round_index >= len(script):
                continue
            action = script[round_index]
            if action.participates and action.transmit:
                transmitters.setdefault(action.channel, []).append(nid)
                payload[action.channel] = action.message
        if len(transmitters.get(1, ())) == 1 and solve_round is None:
            solve_round = round_index + 1
        for nid, script in scripts.items():
            if round_index >= len(script):
                continue
            action = script[round_index]
            if not action.participates:
                observations[nid].append(("none", None))
                continue
            count = len(transmitters.get(action.channel, ()))
            if count == 0:
                observations[nid].append(("silence", None))
            elif count == 1:
                observations[nid].append(("message", payload[action.channel]))
            else:
                observations[nid].append(("collision", None))
    return observations, solve_round


def run_engine(scripts):
    seen = {nid: [] for nid in scripts}

    def factory(ctx):
        def coroutine():
            for action in scripts.get(ctx.node_id, []):
                observation = yield action
                seen[ctx.node_id].append(observation)

        return coroutine()

    result = run_execution(
        factory,
        n=MAX_NODES,
        num_channels=MAX_CHANNELS,
        active_ids=sorted(scripts),
        stop_on_solve=False,
        max_rounds=MAX_ROUNDS + 1,
    )
    return seen, result


FEEDBACK_NAME = {
    Feedback.NONE: "none",
    Feedback.SILENCE: "silence",
    Feedback.MESSAGE: "message",
    Feedback.COLLISION: "collision",
}


@settings(max_examples=300, deadline=None)
@given(scripts_strategy())
def test_engine_matches_reference_model(scripts):
    expected_observations, expected_solve = reference_model(scripts)
    seen, result = run_engine(scripts)

    for nid, script in scripts.items():
        got = [
            (FEEDBACK_NAME[obs.feedback], obs.message) for obs in seen[nid]
        ]
        assert got == expected_observations[nid], f"node {nid}"

    assert result.solved == (expected_solve is not None)
    assert result.solved_round == expected_solve


@settings(max_examples=100, deadline=None)
@given(scripts_strategy())
def test_transmitted_flag_faithful(scripts):
    seen, _result = run_engine(scripts)
    for nid, script in scripts.items():
        for action, observation in zip(script, seen[nid]):
            assert observation.transmitted == (
                action.participates and action.transmit
            )


def run_engine_no_cd(scripts):
    from repro.sim import CollisionDetection

    seen = {nid: [] for nid in scripts}

    def factory(ctx):
        def coroutine():
            for action in scripts.get(ctx.node_id, []):
                observation = yield action
                seen[ctx.node_id].append(observation)

        return coroutine()

    run_execution(
        factory,
        n=MAX_NODES,
        num_channels=MAX_CHANNELS,
        active_ids=sorted(scripts),
        stop_on_solve=False,
        max_rounds=MAX_ROUNDS + 1,
        collision_detection=CollisionDetection.NONE,
    )
    return seen


@settings(max_examples=150, deadline=None)
@given(scripts_strategy())
def test_no_cd_mode_matches_degraded_reference(scripts):
    """Under the no-CD model the engine must deliver exactly the strong-CD
    reference observations degraded per the model: transmitters see nothing;
    receivers see collisions as silence."""
    expected_observations, _solve = reference_model(scripts)
    seen = run_engine_no_cd(scripts)
    for nid, script in scripts.items():
        got = [(FEEDBACK_NAME[obs.feedback], obs.message) for obs in seen[nid]]
        expected = []
        for action, (kind, message) in zip(script, expected_observations[nid]):
            if not action.participates:
                expected.append(("none", None))
            elif action.transmit:
                expected.append(("none", None))
            elif kind == "collision":
                expected.append(("silence", None))
            else:
                expected.append((kind, message))
        assert got == expected, f"node {nid}"
