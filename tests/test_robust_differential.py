"""Differential tests: hardening off means *exactly* off.

``harden()`` must be free when it has nothing to do: with no fault plan, an
inactive plan, or every combinator disabled, the hardened run has to be
bitwise-identical to the bare run — same results, same serialized trace,
same random-stream draws.  Two layers of identity, over the protocol/seed
grid the observability differential suite uses
(``test_obs_differential.CASES``):

1. object identity — ``harden`` returns the *same protocol instance* when
   no combinator applies, so the bare path cannot drift by construction;
2. run identity — fault-free hardened solves fingerprint identically to
   bare solves, and under an *active* plan a fully-disabled
   :class:`~repro.robust.HardeningConfig` reproduces the bare faulted run
   byte for byte (the config switches really switch everything off).

This is the contract behind e21's bare/hardened comparison: any measured
difference is the combinators' doing, not a perturbed baseline.
"""

import json

import pytest

from repro import solve
from repro.faults import CDNoise, Churn, FaultPlan, Jamming, plan_for
from repro.robust import COMBINATORS, HardeningConfig, harden
from repro.sim import result_to_dict

from tests.test_obs_differential import CASES, SEEDS

#: Every "hardening disabled" spelling the API admits.
NO_OP_SPELLINGS = [
    ("no-plan", lambda: None, None),
    ("empty-plan", lambda: FaultPlan(), None),
    ("zero-budget-jamming", lambda: Jamming(0), None),
    ("zero-probability-noise", lambda: CDNoise(0.0), None),
    ("zero-fraction-churn", lambda: Churn(), None),
    (
        "nested-plan-of-zeros",
        lambda: FaultPlan([FaultPlan([Jamming(0), CDNoise(0.0)]), Churn()]),
        None,
    ),
    (
        "all-switches-off",
        lambda: plan_for("cd-noise", 0.5),
        HardeningConfig(
            use_majority_vote=False,
            use_verified_solve=False,
            use_watchdog=False,
        ),
    ),
]

ALL_OFF = HardeningConfig(
    use_majority_vote=False, use_verified_solve=False, use_watchdog=False
)


def _fingerprint(result):
    return json.dumps(result_to_dict(result), sort_keys=True)


def _solve(factory, kwargs, seed, *, faults=None):
    return solve(factory(), seed=seed, record_trace=True, faults=faults, **kwargs)


@pytest.mark.parametrize(
    "spelling,make_faults,config", NO_OP_SPELLINGS, ids=[s[0] for s in NO_OP_SPELLINGS]
)
@pytest.mark.parametrize("name,factory,make_kwargs", CASES, ids=[c[0] for c in CASES])
def test_harden_returns_the_identical_object(
    spelling, make_faults, config, name, factory, make_kwargs
):
    protocol = factory()
    assert harden(protocol, make_faults(), config=config) is protocol


@pytest.mark.parametrize("name,factory,make_kwargs", CASES, ids=[c[0] for c in CASES])
@pytest.mark.parametrize("seed", SEEDS)
def test_fault_free_hardened_run_is_bitwise_identical(name, factory, make_kwargs, seed):
    kwargs = make_kwargs(seed)
    plain = _solve(factory, kwargs, seed)
    hardened = solve(
        harden(factory(), None),
        seed=seed,
        record_trace=True,
        **kwargs,
    )
    assert _fingerprint(hardened) == _fingerprint(plain)
    assert (hardened.solved, hardened.winner, hardened.rounds) == (
        plain.solved,
        plain.winner,
        plain.rounds,
    )


@pytest.mark.parametrize("model", ["jamming", "cd-noise", "churn"])
@pytest.mark.parametrize("name,factory,make_kwargs", CASES[:2], ids=[c[0] for c in CASES[:2]])
def test_disabled_config_reproduces_the_bare_faulted_run(model, name, factory, make_kwargs):
    seed = SEEDS[0]
    kwargs = dict(make_kwargs(seed))
    kwargs.setdefault("max_rounds", 4000)
    plan = plan_for(model, 0.3)

    def faulted(protocol):
        try:
            return _fingerprint(
                solve(protocol, seed=seed, record_trace=True, faults=plan, **kwargs)
            )
        except Exception as exc:  # bare protocols may die under faults
            return f"{type(exc).__name__}"

    assert faulted(harden(factory(), plan, config=ALL_OFF)) == faulted(factory())


def test_force_overrides_a_disabled_config():
    # `force=` measures overhead: it must wrap even when the plan selects
    # nothing and the config disables everything.
    from repro import FNWGeneral

    hardened = harden(FNWGeneral(), None, config=ALL_OFF, force=COMBINATORS)
    assert hardened is not None and hardened.name != FNWGeneral().name
    assert hardened.name.startswith("watchdog[")
