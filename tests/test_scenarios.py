"""Tests for the scenario API."""

import pytest

from repro import BinarySearchCD, FNWGeneral, TreeSplitting
from repro.scenarios import (
    CATALOG,
    DENSE_BURST,
    HALF_DUPLEX,
    SPARSE_UPLINK,
    STAGGERED_SENSORS,
    Scenario,
    compare,
)
from repro.sim import CollisionDetection


class TestScenarioMechanics:
    def test_run_solves(self):
        result = SPARSE_UPLINK.run(FNWGeneral(), seed=1)
        assert result.solved

    def test_activation_respects_count(self):
        activation = SPARSE_UPLINK.activation(seed=0)
        assert activation.size == 24

    def test_activation_all_when_none(self):
        assert DENSE_BURST.activation(seed=0).size == DENSE_BURST.n

    def test_staggered_wakes(self):
        activation = STAGGERED_SENSORS.activation(seed=0)
        assert not activation.simultaneous
        assert max(activation.wake_rounds.values()) <= 41

    def test_deterministic_per_seed(self):
        first = SPARSE_UPLINK.run(FNWGeneral(), seed=5)
        second = SPARSE_UPLINK.run(FNWGeneral(), seed=5)
        assert first.solved_round == second.solved_round
        assert first.winner == second.winner

    def test_with_channels(self):
        wide = SPARSE_UPLINK.with_channels(256)
        assert wide.num_channels == 256
        assert wide.n == SPARSE_UPLINK.n
        assert wide.run(FNWGeneral(), seed=0).solved

    def test_collision_detection_forwarded(self):
        # The classical descent only needs receiver feedback plus its own
        # aloneness... it branches on `alone`; under RECEIVER_ONLY the lone
        # transmission still solves (engine detects it) even though the
        # protocol itself is blind.  Use a protocol that works: tree
        # splitting needs transmitter CD, binary search needs it for the
        # early-exit only.  The robust check: the scenario really passes the
        # mode through, observable via the network config on a failing case.
        assert HALF_DUPLEX.collision_detection is CollisionDetection.RECEIVER_ONLY


class TestMeasureAndCompare:
    def test_measure_summary(self):
        summary = SPARSE_UPLINK.measure(FNWGeneral(), trials=10, master_seed=1)
        assert summary.count == 10
        assert summary.mean > 0

    def test_measure_raises_on_unsolved(self):
        class Mute(FNWGeneral):
            name = "mute"

            def run(self, ctx):
                return
                yield  # pragma: no cover

        with pytest.raises(AssertionError):
            SPARSE_UPLINK.measure(Mute(), trials=2)

    def test_compare_keys(self):
        results = compare(
            SPARSE_UPLINK,
            [FNWGeneral(), BinarySearchCD(), TreeSplitting()],
            trials=8,
        )
        assert set(results) == {"fnw-general", "binary-search-cd", "tree-splitting"}

    def test_catalog_names_match(self):
        for name, scenario in CATALOG.items():
            assert scenario.name == name
        assert len(CATALOG) >= 4


class TestCustomScenario:
    def test_construct_and_run(self):
        custom = Scenario(
            name="tiny",
            n=64,
            num_channels=8,
            active_count=5,
        )
        assert custom.run(FNWGeneral(), seed=2).solved
