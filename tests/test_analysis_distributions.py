"""Tests for the empirical-distribution tooling."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.distributions import (
    empirical_cdf,
    geometric_fit,
    histogram,
    ks_distance,
)


class TestEmpiricalCdf:
    def test_step_values(self):
        cdf = empirical_cdf([1.0, 2.0, 3.0, 4.0])
        assert cdf(0.5) == 0.0
        assert cdf(1.0) == 0.25
        assert cdf(2.5) == 0.5
        assert cdf(4.0) == 1.0
        assert cdf(100.0) == 1.0

    def test_duplicates(self):
        cdf = empirical_cdf([2.0, 2.0, 2.0])
        assert cdf(1.9) == 0.0
        assert cdf(2.0) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_cdf([])

    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=100))
    def test_monotone_and_bounded(self, values):
        cdf = empirical_cdf(values)
        points = sorted(set(values))
        previous = 0.0
        for point in points:
            current = cdf(point)
            assert 0.0 <= current <= 1.0
            assert current >= previous
            previous = current


class TestKsDistance:
    def test_zero_for_own_cdf_limit(self):
        # Sample vs its own empirical CDF: distance bounded by 1/n.
        values = [1.0, 2.0, 3.0, 4.0]
        cdf = empirical_cdf(values)
        assert ks_distance(values, cdf) <= 1.0 / len(values) + 1e-9

    def test_detects_wrong_model(self):
        values = [10.0] * 100
        distance = ks_distance(values, lambda x: 0.0)  # model: mass at +inf
        assert distance == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ks_distance([], lambda x: 0.5)


class TestGeometricFit:
    def test_recovers_known_rate(self):
        rng = random.Random(1)
        p = 0.25
        attempts = []
        for _ in range(4000):
            count = 1
            while rng.random() >= p:
                count += 1
            attempts.append(count)
        fit = geometric_fit(attempts)
        assert fit.success_probability == pytest.approx(p, abs=0.02)
        assert fit.ks < 0.03  # the data really is geometric

    def test_rejects_non_geometric(self):
        # Constant attempts are maximally non-geometric at this rate.
        fit = geometric_fit([5] * 1000)
        assert fit.ks > 0.5

    def test_all_first_try(self):
        fit = geometric_fit([1] * 50)
        assert fit.success_probability == 1.0
        assert fit.failure_probability == 0.0
        assert fit.quantile(0.99) == 1.0

    def test_quantile_formula(self):
        fit = geometric_fit([1, 1, 2, 2, 3, 3])
        q = fit.quantile(0.9)
        # CDF at the quantile is at least 0.9.
        assert 1.0 - fit.failure_probability ** q >= 0.9 - 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            geometric_fit([])
        with pytest.raises(ValueError):
            geometric_fit([0, 1])
        with pytest.raises(ValueError):
            geometric_fit([1]).quantile(1.0)


class TestHistogram:
    def test_counts_sum(self):
        values = [1, 2, 2, 3, 9]
        result = histogram(values, bins=4)
        assert sum(result.values()) == len(values)

    def test_single_value(self):
        result = histogram([5.0, 5.0])
        assert list(result.values()) == [2]

    def test_validation(self):
        with pytest.raises(ValueError):
            histogram([])
        with pytest.raises(ValueError):
            histogram([1.0], bins=0)


@settings(max_examples=50, deadline=None)
@given(st.floats(min_value=0.05, max_value=0.95), st.integers(min_value=0, max_value=1000))
def test_geometric_fit_property(p, seed):
    """MLE recovers the rate of synthetic geometric data within tolerance."""
    rng = random.Random(seed)
    attempts = []
    for _ in range(800):
        count = 1
        while rng.random() >= p:
            count += 1
        attempts.append(count)
    fit = geometric_fit(attempts)
    assert abs(fit.success_probability - p) < 0.08
    assert fit.ks < 0.08
