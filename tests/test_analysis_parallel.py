"""Tests for the process-parallel sweep runner."""

import importlib
import sys
import textwrap

import pytest

from repro.analysis.parallel import (
    _TRIAL_REGISTRY,
    register_trial,
    registered_trials,
    run_cell_parallel,
)
from repro.analysis.sweep import run_cell
from repro.experiments.common import two_active_trial


class TestRegistry:
    def test_standard_trials_registered(self):
        names = registered_trials()
        for expected in ("two-active", "general", "baseline", "leaf-election"):
            assert expected in names

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_trial("two-active")(lambda seed: {"rounds": 0.0})

    def test_reimporting_a_trial_module_is_idempotent(self, tmp_path, monkeypatch):
        """Importing a trial-defining module twice must not raise.

        Sphinx-style doc builds and pytest's module collection can both
        re-import a module after dropping it from ``sys.modules``; the new
        function object defines the *same* trial, so registration must accept
        it rather than report a name clash.
        """
        module_path = tmp_path / "reimported_trials.py"
        module_path.write_text(
            textwrap.dedent(
                '''
                """Temp module that registers a sweep trial at import time."""

                from repro.analysis.parallel import register_trial


                @register_trial("reimport-probe")
                def probe_trial(seed):
                    """Trivial trial used to exercise re-registration."""
                    return {"rounds": float(seed)}
                '''
            )
        )
        monkeypatch.syspath_prepend(str(tmp_path))
        try:
            importlib.import_module("reimported_trials")
            del sys.modules["reimported_trials"]
            module = importlib.import_module("reimported_trials")
            assert "reimport-probe" in registered_trials()
            assert _TRIAL_REGISTRY["reimport-probe"] is module.probe_trial
        finally:
            sys.modules.pop("reimported_trials", None)
            _TRIAL_REGISTRY.pop("reimport-probe", None)

    def test_unknown_trial_rejected(self):
        with pytest.raises(KeyError):
            run_cell_parallel("nope", {}, trials=2)

    def test_trials_validated(self):
        with pytest.raises(ValueError):
            run_cell_parallel("two-active", {"n": 64, "C": 4}, trials=0)


class TestEquivalenceWithSerial:
    def test_in_process_path_matches_serial(self):
        params = {"n": 1 << 10, "C": 16}
        parallel = run_cell_parallel(
            "two-active", params, trials=20, master_seed=3, processes=1
        )
        serial = run_cell(
            lambda seed: two_active_trial(params["n"], params["C"], seed),
            trials=20,
            master_seed=3,
        )
        assert parallel.metric("rounds") == serial.metric("rounds")
        assert parallel.metric("completion_rounds") == serial.metric(
            "completion_rounds"
        )

    def test_pool_path_matches_serial(self):
        params = {"n": 1 << 10, "C": 16}
        try:
            parallel = run_cell_parallel(
                "two-active", params, trials=12, master_seed=5, processes=2
            )
        except (OSError, PermissionError) as error:  # pragma: no cover
            pytest.skip(f"process pools unavailable here: {error}")
        serial = run_cell(
            lambda seed: two_active_trial(params["n"], params["C"], seed),
            trials=12,
            master_seed=5,
        )
        assert parallel.metric("rounds") == serial.metric("rounds")

    def test_general_trial_via_registry(self):
        cell = run_cell_parallel(
            "general",
            {"n": 256, "C": 16, "active": 40},
            trials=5,
            processes=1,
        )
        assert all(t["solved"] == 1.0 for t in cell.trials)
