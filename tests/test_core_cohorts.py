"""Tests for the channel-free cohort reference model itself."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cohorts import (
    Cohort,
    check_cohort_invariants,
    evolve_one_phase,
    global_split_level,
    reference_election,
)
from repro.tree import ChannelTree


def singleton_cohorts(tree, leaves):
    return [Cohort(members=(leaf,), node=tree.leaf_node(leaf)) for leaf in leaves]


class TestGlobalSplitLevel:
    def test_matches_tree_divergence(self):
        tree = ChannelTree(16)
        rng = random.Random(0)
        for _ in range(30):
            leaves = rng.sample(range(1, 17), rng.randint(2, 16))
            cohorts = singleton_cohorts(tree, leaves)
            assert global_split_level(tree, cohorts) == tree.global_divergence_level(
                leaves
            )

    def test_single_cohort_is_zero(self):
        tree = ChannelTree(8)
        assert global_split_level(tree, singleton_cohorts(tree, [3])) == 0


class TestEvolveOnePhase:
    def test_pairs_merge_singletons_die(self):
        tree = ChannelTree(8)
        # Leaves 1,2 share a level-2 parent; leaf 8 is alone under its
        # level-2 ancestor once 1,2 force the split level to 3.
        outcome = evolve_one_phase(tree, singleton_cohorts(tree, [1, 2, 8]))
        assert outcome.split_level == 3
        assert len(outcome.merged) == 1
        assert outcome.merged[0].members == (1, 2)
        assert len(outcome.eliminated) == 1
        assert outcome.eliminated[0].members == (8,)

    def test_merge_order_left_then_right(self):
        tree = ChannelTree(8)
        outcome = evolve_one_phase(tree, singleton_cohorts(tree, [2, 1]))
        assert outcome.merged[0].members == (1, 2)

    def test_merged_node_is_parent(self):
        tree = ChannelTree(8)
        outcome = evolve_one_phase(tree, singleton_cohorts(tree, [3, 4]))
        merged = outcome.merged[0]
        assert tree.level_of(merged.node) == outcome.split_level - 1
        assert merged.node == tree.lca(3, 4)

    def test_requires_two_cohorts(self):
        tree = ChannelTree(8)
        with pytest.raises(ValueError):
            evolve_one_phase(tree, singleton_cohorts(tree, [1]))


class TestReferenceElection:
    def test_leader_always_leftmost_survivor_path(self):
        # For a full leaf set the leader is leaf 1 (always the left child).
        tree = ChannelTree(16)
        assert reference_election(tree, list(range(1, 17))).leader == 1

    def test_two_leaves(self):
        tree = ChannelTree(16)
        assert reference_election(tree, [9, 10]).leader == 9
        # 8 and 9 split at the root; 8 is in the left subtree.
        assert reference_election(tree, [8, 9]).leader == 8

    def test_single_leaf(self):
        tree = ChannelTree(16)
        reference = reference_election(tree, [7])
        assert reference.leader == 7
        assert reference.phase_count == 0

    def test_rejects_duplicates(self):
        tree = ChannelTree(8)
        with pytest.raises(ValueError):
            reference_election(tree, [1, 1])

    def test_rejects_empty(self):
        tree = ChannelTree(8)
        with pytest.raises(ValueError):
            reference_election(tree, [])

    @settings(max_examples=50, deadline=None)
    @given(st.data())
    def test_invariants_hold_along_evolution(self, data):
        exponent = data.draw(st.integers(min_value=1, max_value=7))
        tree = ChannelTree(1 << exponent)
        size = data.draw(st.integers(min_value=1, max_value=tree.num_leaves))
        leaves = data.draw(
            st.lists(
                st.integers(min_value=1, max_value=tree.num_leaves),
                min_size=size,
                max_size=size,
                unique=True,
            )
        )
        reference = reference_election(tree, leaves)
        cohorts = list(reference.initial)
        check_cohort_invariants(tree, cohorts, 1)
        for phase_index, outcome in enumerate(reference.phases, start=1):
            # Each phase keeps at least one cohort and doubles sizes.
            assert outcome.merged
            check_cohort_invariants(tree, list(outcome.merged), phase_index + 1)
            cohorts = list(outcome.merged)
        assert len(cohorts) == 1
        assert cohorts[0].master == reference.leader

    def test_phase_count_bound(self):
        tree = ChannelTree(64)
        rng = random.Random(3)
        for _ in range(20):
            leaves = rng.sample(range(1, 65), rng.randint(2, 64))
            reference = reference_election(tree, leaves)
            assert reference.phase_count <= (len(leaves) - 1).bit_length() + 1


class TestCheckCohortInvariants:
    def test_detects_bad_size(self):
        tree = ChannelTree(8)
        bad = [Cohort(members=(1, 2), node=tree.lca(1, 2))]
        with pytest.raises(AssertionError):
            check_cohort_invariants(tree, bad, 1)  # phase 1 expects size 1

    def test_detects_wrong_node(self):
        tree = ChannelTree(8)
        bad = [Cohort(members=(1,), node=tree.leaf_node(2))]
        with pytest.raises(AssertionError):
            check_cohort_invariants(tree, bad, 1)

    def test_detects_mixed_levels(self):
        tree = ChannelTree(8)
        bad = [
            Cohort(members=(1, 2), node=tree.lca(1, 2)),
            Cohort(members=(5, 7), node=tree.lca(5, 7)),
        ]
        # (1,2) LCA is at level 2; (5,7) LCA is at level 1: mixed levels.
        with pytest.raises(AssertionError):
            check_cohort_invariants(tree, bad, 2)
