"""Tests for the classical tree-splitting (stack) baseline."""

import statistics

import pytest

from repro import TreeSplitting, solve
from repro.sim import Activation, activate_all, activate_random


def run(n, activation, seed):
    return solve(
        TreeSplitting(), n=n, num_channels=1, activation=activation, seed=seed
    )


class TestSolves:
    @pytest.mark.parametrize("active", [1, 2, 3, 17, 256])
    def test_activation_sizes(self, active):
        for seed in range(10):
            result = run(1 << 10, activate_random(1 << 10, active, seed=seed), seed)
            assert result.solved
            assert result.winner is not None

    def test_single_active_one_round(self):
        result = run(64, Activation(active_ids=[5]), 0)
        assert result.solved_round == 1
        assert result.winner == 5

    def test_dense(self):
        for seed in range(5):
            assert run(1 << 10, activate_all(1 << 10), seed).solved

    def test_no_ids_needed(self):
        # The winner varies with the seed even for a fixed activation: the
        # protocol breaks symmetry with coins, not identifiers.
        activation = Activation(active_ids=[10, 20, 30])
        winners = {run(64, activation, seed).winner for seed in range(30)}
        assert len(winners) > 1


class TestComplexityShape:
    def test_logarithmic_growth(self):
        # Mean rounds grow roughly like lg|A| (each split halves the front
        # group): going from 4 to 256 actives (+6 doublings) should add
        # clearly fewer than 6x the rounds.
        def mean_rounds(active):
            values = []
            for seed in range(60):
                result = run(
                    1 << 10, activate_random(1 << 10, active, seed=seed), seed
                )
                values.append(result.rounds)
            return statistics.mean(values)

        small, large = mean_rounds(4), mean_rounds(256)
        assert large < 4 * small
        assert large > small  # but it does grow


class TestStackDiscipline:
    def test_counter_never_negative(self):
        # Structural property via trace: silence rounds only happen when the
        # front group is empty, i.e. there is never a round with zero
        # transmitters AND zero listeners while nodes remain.
        result = solve(
            TreeSplitting(),
            n=256,
            num_channels=1,
            activation=activate_random(256, 50, seed=2),
            seed=2,
            record_trace=True,
        )
        for record in result.trace.rounds:
            assert record.channels  # someone participates every round
