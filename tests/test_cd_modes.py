"""Tests for the collision-detection model variants, including demonstrations
that the paper's algorithms genuinely need the strong model.

The paper's footnote 2 distinguishes classical ("strong") collision
detection — transmitters learn of collisions too — from receiver-only
collision detection.  TwoActive's renaming step and Reduce's leader rule
both hinge on a transmitter knowing whether it was alone, so under weaker
models they must break in specific, observable ways.
"""

import pytest

from repro import CollisionDetection, Decay, FNWGeneral, TwoActive, solve
from repro.sim import Feedback, activate_all, activate_pair, observed_feedback


class TestObservedFeedback:
    def test_strong_is_identity(self):
        for outcome in (Feedback.SILENCE, Feedback.MESSAGE, Feedback.COLLISION):
            for transmitted in (True, False):
                assert (
                    observed_feedback(CollisionDetection.STRONG, outcome, transmitted)
                    is outcome
                )

    def test_receiver_only_blinds_transmitters(self):
        for outcome in (Feedback.SILENCE, Feedback.MESSAGE, Feedback.COLLISION):
            assert (
                observed_feedback(CollisionDetection.RECEIVER_ONLY, outcome, True)
                is Feedback.NONE
            )
            assert (
                observed_feedback(CollisionDetection.RECEIVER_ONLY, outcome, False)
                is outcome
            )

    def test_none_collapses_collision_to_silence(self):
        assert (
            observed_feedback(CollisionDetection.NONE, Feedback.COLLISION, False)
            is Feedback.SILENCE
        )
        assert (
            observed_feedback(CollisionDetection.NONE, Feedback.MESSAGE, False)
            is Feedback.MESSAGE
        )
        assert (
            observed_feedback(CollisionDetection.NONE, Feedback.MESSAGE, True)
            is Feedback.NONE
        )


class TestAlgorithmsNeedStrongCD:
    def test_two_active_livelocks_without_transmitter_cd(self):
        # Step 1's exit test is "I transmitted and detected no collision";
        # under receiver-only CD a transmitter sees nothing, `alone` is never
        # true, and the renaming loop never terminates: no node ever renames
        # and the coroutines never return.  (The *instance* may still be
        # "solved" by an accidental channel-1 solo — the model hands that
        # out for free — but the algorithm itself makes zero progress.)
        result = solve(
            TwoActive(),
            n=1 << 10,
            num_channels=64,
            activation=activate_pair(1 << 10, seed=0),
            seed=0,
            max_rounds=2000,
            collision_detection=CollisionDetection.RECEIVER_ONLY,
        )
        assert not result.trace.marks_with_label("two_active:renamed")
        assert not result.all_terminated

    def test_two_active_never_completes_across_seeds(self):
        # The livelock is seed-independent: across many seeds, no run ever
        # completes the algorithm under receiver-only collision detection.
        for seed in range(5):
            result = solve(
                TwoActive(),
                n=1 << 10,
                num_channels=64,
                activation=activate_pair(1 << 10, seed=seed),
                seed=seed,
                max_rounds=2000,
                collision_detection=CollisionDetection.RECEIVER_ONLY,
            )
            assert not result.all_terminated

    def test_two_active_works_under_strong_cd_same_instance(self):
        result = solve(
            TwoActive(),
            n=1 << 10,
            num_channels=64,
            activation=activate_pair(1 << 10, seed=0),
            seed=0,
            stop_on_solve=False,
            max_rounds=2000,
            collision_detection=CollisionDetection.STRONG,
        )
        assert result.solved


class TestTreeSplittingNeedsTransmitterCD:
    def test_livelocks_under_receiver_only(self):
        # Tree splitting's front group splits only when its members *detect*
        # their own collision; blinded transmitters never split, so a front
        # group of >= 2 nodes collides forever and no solo can occur.
        from repro import TreeSplitting
        from repro.sim import Activation
        from repro.sim.errors import RoundLimitExceeded

        with pytest.raises(RoundLimitExceeded):
            solve(
                TreeSplitting(),
                n=64,
                num_channels=1,
                activation=Activation(active_ids=[3, 7, 11]),
                seed=0,
                max_rounds=500,
                collision_detection=CollisionDetection.RECEIVER_ONLY,
            )

    def test_same_instance_fine_under_strong(self):
        from repro import TreeSplitting
        from repro.sim import Activation

        result = solve(
            TreeSplitting(),
            n=64,
            num_channels=1,
            activation=Activation(active_ids=[3, 7, 11]),
            seed=0,
            max_rounds=500,
            collision_detection=CollisionDetection.STRONG,
        )
        assert result.solved


class TestNoCDProtocolsUnaffected:
    def test_decay_identical_under_none(self):
        # Decay was written for the no-CD model, so degrading the feedback
        # must not change its execution at all (same seeds).
        kwargs = dict(
            n=1 << 8,
            num_channels=1,
            activation=activate_all(1 << 8),
            seed=5,
        )
        strong = solve(Decay(), collision_detection=CollisionDetection.STRONG, **kwargs)
        none = solve(Decay(), collision_detection=CollisionDetection.NONE, **kwargs)
        assert strong.solved_round == none.solved_round
        assert strong.winner == none.winner

    def test_general_algorithm_still_fine_under_strong(self):
        result = solve(
            FNWGeneral(),
            n=1 << 8,
            num_channels=16,
            activation=activate_all(1 << 8),
            seed=3,
            collision_detection=CollisionDetection.STRONG,
        )
        assert result.solved
