"""Tests for activation adversaries (who wakes up, and when)."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import (
    ConfigurationError,
    activate_adjacent,
    activate_all,
    activate_pair,
    activate_random,
    random_delays,
    staggered,
)


class TestActivateAll:
    def test_everyone(self):
        activation = activate_all(10)
        assert activation.active_ids == list(range(1, 11))
        assert activation.size == 10
        assert activation.simultaneous


class TestActivateRandom:
    def test_size_and_range(self):
        activation = activate_random(100, 7, seed=1)
        assert activation.size == 7
        assert all(1 <= i <= 100 for i in activation.active_ids)
        assert len(set(activation.active_ids)) == 7

    def test_deterministic_in_seed(self):
        assert activate_random(100, 7, seed=3).active_ids == activate_random(
            100, 7, seed=3
        ).active_ids
        assert activate_random(100, 7, seed=3).active_ids != activate_random(
            100, 7, seed=4
        ).active_ids

    @pytest.mark.parametrize("count", [0, 101, -1])
    def test_invalid_count(self, count):
        with pytest.raises(ConfigurationError):
            activate_random(100, count)

    @given(st.integers(min_value=2, max_value=200), st.integers(min_value=0, max_value=50))
    def test_property(self, n, seed):
        count = max(1, n // 2)
        activation = activate_random(n, count, seed=seed)
        assert activation.size == count
        assert activation.active_ids == sorted(set(activation.active_ids))


class TestActivatePair:
    def test_exactly_two(self):
        activation = activate_pair(1000, seed=2)
        assert activation.size == 2
        a, b = activation.active_ids
        assert a != b


class TestActivateAdjacent:
    def test_block(self):
        activation = activate_adjacent(100, 5, start=10)
        assert activation.active_ids == [10, 11, 12, 13, 14]

    def test_out_of_range(self):
        with pytest.raises(ConfigurationError):
            activate_adjacent(100, 5, start=98)
        with pytest.raises(ConfigurationError):
            activate_adjacent(100, 101)


class TestStaggered:
    def test_zero_delay_is_simultaneous(self):
        activation = staggered(activate_all(5), max_delay=0)
        assert activation.simultaneous
        assert set(activation.wake_rounds.values()) == {1}

    def test_delays_within_bound(self):
        activation = staggered(activate_all(50), max_delay=7, seed=1)
        assert all(1 <= r <= 8 for r in activation.wake_rounds.values())
        assert set(activation.wake_rounds) == set(range(1, 51))

    def test_explicit_delays(self):
        activation = staggered(
            activate_all(3), max_delay=5, delays={1: 0, 2: 3, 3: 5}
        )
        assert activation.wake_rounds == {1: 1, 2: 4, 3: 6}

    def test_explicit_delay_out_of_bound_rejected(self):
        with pytest.raises(ConfigurationError):
            staggered(activate_all(2), max_delay=2, delays={1: 3})

    def test_negative_max_delay_rejected(self):
        with pytest.raises(ConfigurationError):
            staggered(activate_all(2), max_delay=-1)

    def test_deterministic(self):
        a = staggered(activate_all(20), max_delay=9, seed=4)
        b = staggered(activate_all(20), max_delay=9, seed=4)
        assert a.wake_rounds == b.wake_rounds


class TestRandomDelays:
    def test_reproducible(self):
        ids = list(range(1, 30))
        assert random_delays(ids, max_delay=6, seed=2) == random_delays(
            ids, max_delay=6, seed=2
        )
        assert random_delays(ids, max_delay=6, seed=2) != random_delays(
            ids, max_delay=6, seed=3
        )

    def test_bounds_and_coverage(self):
        delays = random_delays(list(range(1, 60)), max_delay=4, seed=1)
        assert set(delays) == set(range(1, 60))
        assert all(0 <= d <= 4 for d in delays.values())

    def test_negative_bound_rejected(self):
        with pytest.raises(ConfigurationError):
            random_delays([1, 2], max_delay=-1)

    def test_staggered_uses_the_same_draw(self):
        # staggered() is a thin wrapper: its wake rounds are exactly
        # 1 + random_delays(...) for the same ids, bound, and seed.
        base = activate_all(25)
        chosen = random_delays(base.active_ids, max_delay=7, seed=9)
        activation = staggered(base, max_delay=7, seed=9)
        assert activation.wake_rounds == {nid: 1 + d for nid, d in chosen.items()}


class TestJammingScheduleRoundTrip:
    """The seeded jamming adversary's schedule survives serialization."""

    def test_schedule_reproducible_and_serializable(self, tmp_path):
        from repro.faults import Jamming, ScheduledJamming
        from repro.sim import load_fault_plan, save_fault_plan

        model = Jamming(9, channels_per_round=3, target="random", seed=6)
        model.bind(n=64, num_channels=8, seed=0, max_rounds=128)
        plan = model.schedule(30)
        # Freeze the derived schedule into its explicit twin and round-trip
        # it through the on-disk format.
        frozen = ScheduledJamming(plan)
        path = tmp_path / "jam.json"
        save_fault_plan(frozen, str(path))
        rebuilt = load_fault_plan(str(path))
        assert rebuilt.budget == model.budget == 9
        for round_index in range(1, 31):
            assert rebuilt.jammed_channels(round_index) == model.jammed_channels(
                round_index
            )
