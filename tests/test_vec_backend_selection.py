"""Backend selection, capability detection, and fallback behavior.

``Engine.run(backend=...)`` routes between the coroutine round loops and
the vectorized backend.  These tests pin the selection contract:

* unknown backend names are configuration errors (before anything runs);
* an *explicit* ``backend="vec"`` without NumPy is a clean ``ImportError``
  naming the ``repro[vec]`` extra — never a silent fallback;
* ineligible runs (faults, traces, no IR lowering, failed lowering) fall
  back to the coroutine engine with a structured
  :class:`~repro.sim.vec.VecFallbackWarning` and still produce the run;
* the ``used_backend`` / ``used_fast_path`` diagnostics report what ran;
* degenerate activations (n=1 solo, empty set) behave identically on both
  backends.

Everything except the classes marked with ``importorskip`` runs without
NumPy installed: backend validation, fallback detection, and activation
resolution all happen before the first NumPy touch.
"""

import pytest

from repro import solve
from repro.baselines import Decay
from repro.core import TwoActive
from repro.faults import FaultPlan
from repro.protocols.ir import LoweringError
from repro.sim import (
    Activation,
    ConfigurationError,
    Engine,
    Network,
    vec,
)

pytestmark = pytest.mark.filterwarnings(
    "error::repro.sim.vec.VecFallbackWarning"
)


class _Unlowerable:
    """A Decay whose lowering always fails."""

    name = "unlowerable-decay"

    def __init__(self):
        self._inner = Decay()

    def to_round_program(self, network):
        raise LoweringError("deliberately unlowerable")

    def __call__(self, ctx):
        return self._inner(ctx)


def _engine(**kwargs):
    return Engine(Network(n=16, num_channels=2), seed=3, **kwargs)


class TestBackendValidation:
    def test_unknown_backend_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError, match="unknown engine backend"):
            solve(Decay(), n=16, num_channels=1, backend="bogus")

    def test_unknown_backend_rejected_before_running(self):
        engine = _engine()
        with pytest.raises(ConfigurationError, match="known backends"):
            engine.run(Decay(), backend="jax")

    def test_missing_numpy_is_a_clean_import_error(self, monkeypatch):
        def broken_import():
            raise ImportError("No module named 'numpy'")

        monkeypatch.setattr(vec, "_np_cache", None)
        monkeypatch.setattr(vec, "_import_numpy", broken_import)
        with pytest.raises(ImportError, match=r"repro\[vec\]"):
            vec.require_numpy()
        # An explicit backend="vec" request surfaces the same error — a
        # user who asked for vec must never be silently served coroutine.
        with pytest.raises(ImportError, match=r"repro\[vec\]"):
            solve(Decay(), n=16, num_channels=1, backend="vec")

    def test_numpy_available_reflects_importability(self, monkeypatch):
        def broken_import():
            raise ImportError("No module named 'numpy'")

        monkeypatch.setattr(vec, "_np_cache", None)
        monkeypatch.setattr(vec, "_import_numpy", broken_import)
        assert not vec.numpy_available()


class TestCapabilityFallback:
    """Ineligible runs warn and fall back — and still produce the run."""

    def _run(self, protocol, **kwargs):
        return solve(
            protocol, n=16, num_channels=2, seed=3, backend="vec", **kwargs
        )

    def test_protocol_without_lowering_falls_back(self):
        with pytest.warns(vec.VecFallbackWarning, match="no round-program lowering"):
            result = self._run(TwoActive(), activation=Activation(active_ids=[2, 9]))
        assert result.solved

    def test_failed_lowering_falls_back(self):
        with pytest.warns(vec.VecFallbackWarning, match="deliberately unlowerable"):
            result = self._run(_Unlowerable(), stop_on_solve=False, max_rounds=64)
        assert result.rounds >= 1

    def test_faulted_run_falls_back(self):
        with pytest.warns(vec.VecFallbackWarning, match="fault injection"):
            result = self._run(Decay(), faults=FaultPlan(), max_rounds=64)
        assert result.rounds >= 1

    def test_traced_run_falls_back(self):
        engine = _engine(record_trace=True)
        with pytest.warns(vec.VecFallbackWarning, match="record_trace"):
            result = engine.run(Decay(), backend="vec", max_rounds=64)
        assert engine.used_backend == "coroutine"
        assert result.trace.rounds  # the trace was actually recorded

    def test_fallback_warning_carries_protocol_and_reason(self):
        with pytest.warns(vec.VecFallbackWarning) as captured:
            self._run(TwoActive(), activation=Activation(active_ids=[2, 9]))
        warning = captured[0].message
        assert warning.protocol == "two-active" or "TwoActive" in str(warning)
        assert "lowering" in str(warning)


class TestDegenerateActivations:
    def test_empty_activation_fails_identically(self):
        for backend in ("coroutine", "vec"):
            with pytest.raises(ConfigurationError, match="at least one node"):
                solve(
                    Decay(),
                    n=16,
                    num_channels=1,
                    activation=Activation(active_ids=[]),
                    backend=backend,
                )


class TestVecExecution:
    """Tests that actually execute the vectorized backend (need NumPy)."""

    @pytest.fixture(autouse=True)
    def _needs_numpy(self):
        pytest.importorskip("numpy")

    def test_solo_node_wins_round_one_on_both_backends(self):
        from repro.baselines import SlottedAloha

        results = {}
        engines = {}
        for backend in ("coroutine", "vec"):
            engine = _engine()
            results[backend] = engine.run(
                SlottedAloha(probability=1.0), active_ids=[7], backend=backend
            )
            engines[backend] = engine
        for backend, result in results.items():
            assert result.solved, backend
            assert result.solved_round == 1, backend
            assert result.winner == 7, backend
        assert engines["coroutine"].used_backend == "coroutine"
        assert engines["vec"].used_backend == "vec"

    def test_diagnostics_report_what_ran(self):
        engine = _engine()
        engine.run(Decay(), active_ids=[1, 5], backend="vec", max_rounds=64)
        assert engine.used_backend == "vec"
        assert not engine.used_fast_path

        engine.run(Decay(), active_ids=[1, 5], backend="coroutine", max_rounds=64)
        assert engine.used_backend == "coroutine"
        assert engine.used_fast_path  # eligible run: fast coroutine loop

    def test_default_backend_is_coroutine(self):
        engine = _engine()
        engine.run(Decay(), active_ids=[1, 5], max_rounds=64)
        assert engine.used_backend == "coroutine"

    def test_vec_run_protocol_is_strict(self):
        with pytest.raises(LoweringError, match="no round-program lowering"):
            vec.run_protocol(TwoActive(), n=16, num_channels=2)
        with pytest.raises(ConfigurationError, match="unknown draw mode"):
            vec.run_protocol(Decay(), n=16, num_channels=1, draws="quantum")
