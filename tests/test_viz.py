"""Tests for the text visualization helpers."""

import pytest

from repro.tree import ChannelTree
from repro.viz import horizontal_bars, render_channel_tree, series_table, sparkline


class TestSparkline:
    def test_length_matches(self):
        assert len(sparkline([1, 2, 3])) == 3

    def test_empty(self):
        assert sparkline([]) == ""

    def test_extremes(self):
        line = sparkline([0, 10])
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_all_zero(self):
        assert sparkline([0, 0, 0]) == "▁▁▁"

    def test_custom_maximum(self):
        assert sparkline([5], maximum=10)[0] not in ("▁", "█")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            sparkline([-1.0])

    def test_monotone_series_monotone_blocks(self):
        line = sparkline(list(range(9)))
        assert list(line) == sorted(line, key="▁▂▃▄▅▆▇█".index)


class TestHorizontalBars:
    def test_alignment_and_values(self):
        text = horizontal_bars(["a", "bb"], [1.0, 2.0])
        lines = text.split("\n")
        assert len(lines) == 2
        assert "2" in lines[1]
        # The larger value has the longer bar.
        assert lines[1].count("#") > lines[0].count("#")

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            horizontal_bars(["a"], [1.0, 2.0])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            horizontal_bars(["a"], [-1.0])

    def test_empty(self):
        assert horizontal_bars([], []) == ""


class TestRenderChannelTree:
    def test_contains_all_node_numbers(self):
        tree = ChannelTree(8)
        text = render_channel_tree(tree)
        for node in range(1, tree.num_nodes + 1):
            assert str(node) in text

    def test_occupied_leaves_starred(self):
        tree = ChannelTree(4)
        text = render_channel_tree(tree, occupied_leaves=[2])
        # Leaf 2 is node 5.
        assert "5*" in text

    def test_highlight_tags(self):
        tree = ChannelTree(4)
        text = render_channel_tree(tree, highlight={1: "!"})
        assert "1!" in text

    def test_rejects_huge_trees(self):
        with pytest.raises(ValueError):
            render_channel_tree(ChannelTree(128))

    def test_levels_equal_height_plus_one(self):
        tree = ChannelTree(16)
        assert len(render_channel_tree(tree).split("\n")) == tree.height + 1


class TestSeriesTable:
    def test_rows_and_stride(self):
        text = series_table([1, 2, 3, 4], {"a": [1, 2, 3, 4]}, stride=2)
        lines = text.split("\n")
        assert len(lines) == 2 + 2  # header, rule, rows 1 and 3

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            series_table([1, 2], {"a": [1.0]})

    def test_multiple_series(self):
        text = series_table([1], {"a": [1.0], "b": [2.0]})
        assert "a" in text and "b" in text
