"""Tests for execution traces and mark bookkeeping."""

from repro.sim import ChannelRound, ExecutionTrace, Feedback, RoundRecord
from repro.sim.context import MarkCollector, MarkRecord


def make_trace():
    trace = ExecutionTrace()
    trace.rounds = [
        RoundRecord(
            round_index=1,
            channels={
                1: ChannelRound((3,), (4, 5), Feedback.MESSAGE, "hello"),
                2: ChannelRound((6, 7), (), Feedback.COLLISION),
            },
            active_count=5,
        ),
        RoundRecord(
            round_index=2,
            channels={2: ChannelRound((), (6,), Feedback.SILENCE)},
            active_count=3,
        ),
    ]
    trace.marks = [
        MarkRecord(1, 3, "renamed", {"id": 9}),
        MarkRecord(2, 4, "renamed", {"id": 2}),
        MarkRecord(2, 4, "done", None),
    ]
    return trace


class TestExecutionTrace:
    def test_marks_with_label(self):
        trace = make_trace()
        assert len(trace.marks_with_label("renamed")) == 2
        assert trace.marks_with_label("missing") == []

    def test_first_and_last_mark_round(self):
        trace = make_trace()
        assert trace.first_mark_round("renamed") == 1
        assert trace.last_mark_round("renamed") == 2
        assert trace.first_mark_round("missing") is None
        assert trace.last_mark_round("missing") is None

    def test_channel_utilization(self):
        usage = make_trace().channel_utilization()
        assert usage == {1: 3, 2: 3}

    def test_busiest_channel(self):
        trace = make_trace()
        assert trace.rounds[0].busiest_channel() == 1
        assert trace.rounds[1].busiest_channel() == 2

    def test_render_contains_rounds(self):
        text = make_trace().render(max_channels=4)
        assert "round" in text
        assert "1" in text
        # Collisions rendered as '*'.
        assert "*" in text

    def test_render_truncation_notice(self):
        trace = make_trace()
        text = trace.render(max_rounds=1, max_channels=2)
        assert "more rounds" in text


class TestMarkCollector:
    def test_rounds_stamped(self):
        collector = MarkCollector()
        collector.set_round(3)
        collector.sink(1, "a", None)
        collector.set_round(5)
        collector.sink(2, "b", "x")
        assert [(m.round_index, m.node_id, m.label) for m in collector.records] == [
            (3, 1, "a"),
            (5, 2, "b"),
        ]

    def test_labels_in_first_appearance_order(self):
        collector = MarkCollector()
        for label in ("b", "a", "b", "c", "a"):
            collector.sink(1, label, None)
        assert collector.labels() == ["b", "a", "c"]

    def test_pairs(self):
        collector = MarkCollector()
        collector.sink(1, "k", 1)
        collector.sink(1, "k", 2)
        assert collector.pairs() == [("k", 1), ("k", 2)]

    def test_with_label(self):
        collector = MarkCollector()
        collector.sink(1, "x", None)
        collector.sink(2, "y", None)
        assert len(collector.with_label("x")) == 1
