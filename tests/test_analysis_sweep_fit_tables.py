"""Tests for sweeps, fitting, predictors, and table rendering."""

import pytest

from repro.analysis import (
    Table,
    fit_linear,
    grid_product,
    log_log_slope,
    ratio_spread,
    ratios,
    run_cell,
    run_sweep,
)
from repro.analysis.predictors import (
    daum_bound,
    decay_bound,
    general_bound,
    id_reduction_bound,
    leaf_election_bound,
    leaf_election_binary_bound,
    lower_bound_two_channel_cd,
    two_active_bound,
)


class TestGridProduct:
    def test_row_major_order(self):
        grid = grid_product(n=[1, 2], C=[10, 20])
        assert grid == [
            {"n": 1, "C": 10},
            {"n": 1, "C": 20},
            {"n": 2, "C": 10},
            {"n": 2, "C": 20},
        ]

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            grid_product(n=[])


class TestRunCellAndSweep:
    def test_deterministic_seeds(self):
        seen = []

        def trial(seed):
            seen.append(seed)
            return {"rounds": float(seed % 7)}

        first = run_cell(trial, trials=10, master_seed=3)
        seeds_first = list(seen)
        seen.clear()
        run_cell(trial, trials=10, master_seed=3)
        assert seen == seeds_first
        assert first.summary("rounds").count == 10

    def test_cell_lookup(self):
        sweep = run_sweep(
            grid_product(n=[1, 2]),
            lambda params: (lambda seed: {"rounds": float(params["n"])}),
            trials=3,
        )
        assert sweep.cell(n=2).mean("rounds") == 2.0
        with pytest.raises(KeyError):
            sweep.cell(n=99)

    def test_missing_metric_raises(self):
        cell = run_cell(lambda seed: {"rounds": 1.0}, trials=2)
        with pytest.raises(KeyError):
            cell.summary("absent")

    def test_trials_validated(self):
        with pytest.raises(ValueError):
            run_cell(lambda seed: {"rounds": 1.0}, trials=0)

    def test_column(self):
        sweep = run_sweep(
            grid_product(n=[3, 5]),
            lambda params: (lambda seed: {"rounds": float(params["n"])}),
            trials=2,
        )
        assert sweep.column("rounds") == [3.0, 5.0]


class TestFitting:
    def test_perfect_line(self):
        xs = [1.0, 2.0, 3.0, 4.0]
        ys = [3.0, 5.0, 7.0, 9.0]
        fit = fit_linear(xs, ys)
        assert fit.scale == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.predict(5.0) == pytest.approx(11.0)

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            fit_linear([1.0], [2.0])
        with pytest.raises(ValueError):
            fit_linear([1.0, 1.0], [2.0, 3.0])
        with pytest.raises(ValueError):
            fit_linear([1.0, 2.0], [2.0])

    def test_ratio_spread(self):
        spread = ratio_spread([2.0, 4.0, 3.0], [1.0, 2.0, 1.0])
        assert spread.minimum == 2.0
        assert spread.maximum == 3.0
        assert spread.spread == 1.5

    def test_ratios_validation(self):
        with pytest.raises(ValueError):
            ratios([1.0], [0.0])
        with pytest.raises(ValueError):
            ratios([1.0, 2.0], [1.0])

    def test_log_log_slope(self):
        xs = [2.0, 4.0, 8.0, 16.0]
        ys = [4.0, 16.0, 64.0, 256.0]  # y = x^2
        assert log_log_slope(xs, ys) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            log_log_slope([0.0, 1.0], [1.0, 2.0])


class TestPredictors:
    def test_two_active_matches_lower_bound(self):
        assert two_active_bound(1 << 16, 64) == lower_bound_two_channel_cd(1 << 16, 64)

    def test_two_active_components(self):
        # log n/log C + loglog n with exact powers: 16/6 + 4.
        assert two_active_bound(1 << 16, 64) == pytest.approx(16 / 6 + 4)

    def test_general_exceeds_two_active(self):
        for n_exp in (8, 16, 24):
            assert general_bound(1 << n_exp, 64) >= two_active_bound(1 << n_exp, 64)

    def test_monotone_in_n(self):
        values = [general_bound(1 << k, 64) for k in range(4, 30)]
        assert values == sorted(values)

    def test_decreasing_in_channels(self):
        values = [id_reduction_bound(1 << 20, 1 << k) for k in range(2, 12)]
        assert values == sorted(values, reverse=True)

    def test_decay_vs_daum(self):
        n = 1 << 16
        assert daum_bound(n, 1) == pytest.approx(decay_bound(n) + 16)
        assert daum_bound(n, 256) < decay_bound(n)

    def test_leaf_election_binary_dominates_cohort(self):
        for x in (4, 16, 256):
            assert leaf_election_binary_bound(1024, x) >= leaf_election_bound(1024, x)

    def test_all_positive(self):
        for fn, args in [
            (two_active_bound, (2, 1)),
            (general_bound, (2, 1)),
            (leaf_election_bound, (4, 1)),
            (decay_bound, (2,)),
            (daum_bound, (2, 1)),
        ]:
            assert fn(*args) > 0


class TestTable:
    def test_render_alignment(self):
        table = Table(["a", "bbb"], caption="cap")
        table.add_row(1, 2.345)
        text = table.render()
        assert "cap" in text
        assert "a" in text and "bbb" in text
        assert "2.35" in text  # 2 digits default

    def test_row_length_validated(self):
        table = Table(["a"])
        with pytest.raises(ValueError):
            table.add_row(1, 2)

    def test_markdown(self):
        table = Table(["x", "y"], caption="t")
        table.add_row(1, True)
        md = table.markdown()
        assert "| x | y |" in md
        assert "| 1 | yes |" in md

    def test_bool_and_digits_formatting(self):
        table = Table(["v"], digits=3)
        table.add_row(1.23456)
        assert "1.235" in table.render()
        table2 = Table(["v"])
        table2.add_row(False)
        assert "no" in table2.render()

    def test_add_rows(self):
        table = Table(["a", "b"])
        table.add_rows([(1, 2), (3, 4)])
        assert len(table.rows) == 2

    def test_needs_columns(self):
        with pytest.raises(ValueError):
            Table([])
