"""Tests for the ``repro profile`` CLI: golden JSONL output + schema checks.

The JSONL profile format is a public artifact (benchmark logs and
EXPERIMENTS.md cite it), so it is pinned two ways:

* a golden-file test on a fixed seed — every deterministic field must match
  byte for byte (wall-time fields, the only nondeterministic ones, are
  canonicalized out and checked for shape instead);
* schema validation of every emitted record, including the model-level
  outcome/transmitter-count consistency rules.
"""

import json
import pathlib

import pytest

from repro.cli import main
from repro.obs.profile import PROFILE_SCHEMA_VERSION, validate_jsonl, validate_record

GOLDEN = pathlib.Path(__file__).parent / "data" / "golden_profile_general_n256_c16_seed3.jsonl"

PROFILE_ARGS = [
    "profile",
    "--protocol",
    "fnw-general",
    "--n",
    "256",
    "--channels",
    "16",
    "--active",
    "30",
    "--seed",
    "3",
]

#: Histograms fed by wall clocks; their bucket placement is nondeterministic.
TIMING_HISTOGRAMS = ("round_wall_time_s", "run_wall_time_s")


def canonical(records):
    """Strip the wall-clock fields, leaving only deterministic content."""
    cleaned = []
    for record in records:
        record = json.loads(json.dumps(record))  # deep copy
        wall = record.pop("wall_time_s", None)
        assert isinstance(wall, (int, float)) and wall >= 0
        metrics = record.get("metrics")
        if metrics:
            for name in TIMING_HISTOGRAMS:
                histogram = metrics["histograms"].pop(name)
                assert histogram["count"] >= 1
        cleaned.append(record)
    return cleaned


def run_profile(tmp_path, extra=()):
    path = tmp_path / "profile.jsonl"
    assert main(PROFILE_ARGS + ["--jsonl", str(path)] + list(extra)) == 0
    with open(path, "r", encoding="utf-8") as handle:
        return path, [json.loads(line) for line in handle if line.strip()]


class TestGoldenOutput:
    def test_matches_golden_jsonl(self, tmp_path, capsys):
        _path, records = run_profile(tmp_path)
        capsys.readouterr()
        with open(GOLDEN, "r", encoding="utf-8") as handle:
            golden = [json.loads(line) for line in handle if line.strip()]
        assert canonical(records) == golden

    def test_every_record_validates(self, tmp_path, capsys):
        path, records = run_profile(tmp_path)
        capsys.readouterr()
        for record in records:
            validate_record(record)
        assert validate_jsonl(str(path)) == len(records)

    def test_stream_shape(self, tmp_path, capsys):
        _path, records = run_profile(tmp_path)
        capsys.readouterr()
        assert all(r["schema"] == PROFILE_SCHEMA_VERSION for r in records)
        assert [r["type"] for r in records[:-1]] == ["round"] * (len(records) - 1)
        summary = records[-1]
        assert summary["type"] == "summary"
        assert summary["rounds"] == len(records) - 1
        assert summary["solved"] is True
        assert summary["metrics"]["counters"]["rounds"]["value"] == float(
            summary["rounds"]
        )


class TestSchemaValidation:
    def _round_record(self):
        return {
            "schema": PROFILE_SCHEMA_VERSION,
            "type": "round",
            "round": 1,
            "active": 3,
            "transmitters": 2,
            "listeners": 1,
            "wall_time_s": 0.001,
            "channels": {
                "1": {"transmitters": 2, "listeners": 1, "outcome": "collision"}
            },
        }

    def test_valid_round_record_accepted(self):
        validate_record(self._round_record())

    @pytest.mark.parametrize(
        "mutate,message",
        [
            (lambda r: r.update(schema=99), "schema"),
            (lambda r: r.update(type="bogus"), "type"),
            (lambda r: r.update(round=0), "round"),
            (lambda r: r.update(transmitters=5), "total"),
            (lambda r: r["channels"]["1"].update(outcome="message"), "inconsistent"),
            (lambda r: r["channels"]["1"].update(outcome="nonsense"), "outcome"),
            (lambda r: r.update(active=1), "participants"),
            (lambda r: r.update(wall_time_s=-1), "wall_time_s"),
        ],
    )
    def test_corrupt_round_records_rejected(self, mutate, message):
        record = self._round_record()
        mutate(record)
        with pytest.raises(ValueError):
            validate_record(record)

    def test_silence_requires_a_listener(self):
        record = self._round_record()
        record["channels"]["1"] = {"transmitters": 0, "listeners": 0, "outcome": "silence"}
        record.update(transmitters=0, listeners=0)
        with pytest.raises(ValueError):
            validate_record(record)

    def test_summary_solved_consistency_enforced(self):
        record = {
            "schema": PROFILE_SCHEMA_VERSION,
            "type": "summary",
            "protocol": "x",
            "n": 8,
            "C": 2,
            "seed": 0,
            "solved": True,
            "solved_round": None,
            "winner": None,
            "rounds": 4,
            "wall_time_s": 0.1,
            "metrics": {},
        }
        with pytest.raises(ValueError):
            validate_record(record)
        record.update(solved=False)
        validate_record(record)

    def test_jsonl_stream_rules(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        good = self._round_record()
        out_of_order = dict(good, round=1)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(good) + "\n")
            handle.write(json.dumps(out_of_order) + "\n")
        with pytest.raises(ValueError):
            validate_jsonl(str(path))
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(good) + "\n")
        with pytest.raises(ValueError):  # missing summary
            validate_jsonl(str(path))


class TestProfileCommand:
    def test_single_run_output(self, capsys):
        assert main(PROFILE_ARGS) == 0
        out = capsys.readouterr().out
        assert "solved=True" in out
        assert "rounds/s" in out
        assert "busiest channels" in out

    def test_sweep_mode_reports_workers(self, capsys):
        try:
            code = main(
                PROFILE_ARGS
                + ["--trials", "3", "--processes", "2"]
            )
        except (OSError, PermissionError) as error:  # pragma: no cover
            pytest.skip(f"process pools unavailable here: {error}")
        assert code == 0
        out = capsys.readouterr().out
        assert "solved 3/3" in out
        assert "per-worker timing" in out
        assert "trials/s" in out
